"""The Properties pattern: defaults + file + command-line overrides.

Slides 183-195 recommend the ``java.util.Properties`` idiom for making
experiments parameterizable: a map of string key/value pairs initialised
from constant defaults, optionally overridden from a file and finally
from ``-Dkey=value`` command-line arguments.  This module is the Python
equivalent, with typed accessors and meaningful errors (slide 189:
"report meaningful error if the configuration file is not found").
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import ConfigError

_TRUE = {"true", "yes", "on", "1"}
_FALSE = {"false", "no", "off", "0"}


class Properties:
    """String key/value configuration with layered overrides.

    Precedence (lowest to highest): constructor defaults, values loaded
    with :meth:`load_file`, values set with :meth:`set` /
    :meth:`apply_cli_overrides`.
    """

    def __init__(self, defaults: Optional[Mapping[str, str]] = None):
        self._values: Dict[str, str] = {}
        if defaults:
            for key, value in defaults.items():
                self._check_key(key)
                self._values[key] = str(value)

    @staticmethod
    def _check_key(key: str) -> None:
        if not key or "=" in key or any(c.isspace() for c in key):
            raise ConfigError(f"bad property key {key!r}")

    def __contains__(self, key: str) -> bool:
        return key in self._values

    def __len__(self) -> int:
        return len(self._values)

    def keys(self) -> Tuple[str, ...]:
        return tuple(sorted(self._values))

    def as_dict(self) -> Dict[str, str]:
        return dict(self._values)

    # -- mutation -----------------------------------------------------------

    def set(self, key: str, value: Any) -> None:
        self._check_key(key)
        self._values[key] = str(value)

    def load_file(self, path: "str | Path") -> int:
        """Load ``key=value`` lines (``#`` comments); returns keys read.

        A missing file raises :class:`ConfigError` naming the path — the
        tutorial's meaningful-error requirement.
        """
        path = Path(path)
        if not path.exists():
            raise ConfigError(
                f"configuration file not found: {path} "
                f"(expected a key=value properties file; working "
                f"directory is {Path.cwd()})")
        count = 0
        for line_no, raw in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1):
            line = raw.strip()
            if not line or line.startswith("#"):
                continue
            if "=" not in line:
                raise ConfigError(
                    f"{path}:{line_no}: expected key=value, got {raw!r}")
            key, __, value = line.partition("=")
            self.set(key.strip(), value.strip())
            count += 1
        return count

    def store_file(self, path: "str | Path", comment: str = "") -> None:
        """Write all properties to a file, sorted by key."""
        lines: List[str] = []
        if comment:
            lines.extend(f"# {ln}" for ln in comment.splitlines())
        lines.extend(f"{k}={self._values[k]}" for k in self.keys())
        Path(path).write_text("\n".join(lines) + "\n", encoding="utf-8")

    def apply_cli_overrides(self, argv: Sequence[str]) -> List[str]:
        """Apply ``-Dkey=value`` arguments; returns the non-D leftovers.

        Mirrors ``java -DdataDir=./test pack.AnyClass`` (slide 195).
        """
        rest: List[str] = []
        for arg in argv:
            if arg.startswith("-D"):
                body = arg[2:]
                if "=" not in body:
                    raise ConfigError(
                        f"bad override {arg!r}: expected -Dkey=value")
                key, __, value = body.partition("=")
                self.set(key, value)
            else:
                rest.append(arg)
        return rest

    # -- typed accessors -----------------------------------------------------

    def get(self, key: str, default: Optional[str] = None) -> str:
        if key in self._values:
            return self._values[key]
        if default is not None:
            return default
        raise ConfigError(
            f"missing property {key!r}; known keys: {list(self.keys())}")

    def get_int(self, key: str, default: Optional[int] = None) -> int:
        raw = self.get(key, None if default is None else str(default))
        try:
            return int(raw)
        except ValueError:
            raise ConfigError(
                f"property {key!r} should be an integer, got {raw!r}"
            ) from None

    def get_float(self, key: str, default: Optional[float] = None) -> float:
        raw = self.get(key, None if default is None else repr(default))
        try:
            return float(raw)
        except ValueError:
            raise ConfigError(
                f"property {key!r} should be a number, got {raw!r}"
            ) from None

    def get_bool(self, key: str, default: Optional[bool] = None) -> bool:
        raw = self.get(key, None if default is None else str(default))
        lowered = raw.strip().lower()
        if lowered in _TRUE:
            return True
        if lowered in _FALSE:
            return False
        raise ConfigError(
            f"property {key!r} should be a boolean "
            f"({sorted(_TRUE)} / {sorted(_FALSE)}), got {raw!r}")

    def get_path(self, key: str,
                 default: Optional[str] = None) -> Path:
        return Path(self.get(key, default))
