"""Experiment-suite documentation generation.

Slide 216 lists what repeatability instructions must specify: what the
installation requires and how to install; and per experiment, any extra
installation, the script to run, where to look for the graph, and how
long it takes.  :func:`write_manifest` renders exactly that from a
:class:`~repro.repeat.suite.ExperimentSuite`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Sequence

from repro.errors import SuiteError
from repro.repeat.suite import ExperimentSuite


@dataclass(frozen=True)
class InstallInfo:
    """The suite-wide installation section of the manifest.

    ``suite_module`` is the dotted module path exposing the suite (its
    ``SUITE`` attribute or ``build_suite()`` factory) so the generated
    run commands work verbatim with ``python -m repro.repeat.run``.
    """

    requirements: Sequence[str]
    install_command: str
    data_preparation: str = ""
    suite_module: str = ""

    def __post_init__(self):
        if not self.install_command:
            raise SuiteError("an install command is required")


def render_manifest(suite: ExperimentSuite, install: InstallInfo) -> str:
    """Render the manifest markdown text."""
    lines: List[str] = [
        f"# Repeatability manifest: {suite.name}",
        "",
        "## Installation",
        "",
        "Requirements:",
    ]
    for requirement in install.requirements:
        lines.append(f"- {requirement}")
    lines += ["", "Install:", "", f"    {install.install_command}", ""]
    if install.data_preparation:
        lines += ["Data preparation:", "",
                  f"    {install.data_preparation}", ""]
    lines += [
        "## Experiments",
        "",
        f"Total expected duration: "
        f"{suite.total_expected_minutes():.0f} minute(s).",
        "",
    ]
    module = install.suite_module or "<your.suite.module>"
    for name in suite.experiment_names:
        experiment = suite.experiment(name)
        lines += [
            f"### {name}",
            "",
            experiment.description or "(no description)",
            "",
            f"- run: `python -m repro.repeat.run {module} {name}`",
            f"- results: `res/{name}.csv`",
        ]
        if experiment.plot_x and experiment.plot_y:
            lines.append(
                f"- graph: `graphs/{name}.gnu` "
                f"(run `gnuplot graphs/{name}.gnu` to produce "
                f"`graphs/{name}.eps`)")
        lines += [
            f"- expected duration: ~{experiment.expected_minutes:g} "
            "minute(s)",
            "",
        ]
    return "\n".join(lines)


def write_manifest(suite: ExperimentSuite, install: InstallInfo,
                   path: Optional[Path] = None) -> Path:
    """Write the manifest into the suite root (default MANIFEST.md)."""
    suite.scaffold()
    target = path if path is not None else suite.root / "MANIFEST.md"
    target.write_text(render_manifest(suite, install), encoding="utf-8")
    return target
