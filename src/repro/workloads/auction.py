"""An XMark-inspired auction benchmark (relational shredding).

Slide 13 lists the XML benchmark family (XMark, XBench, ...) next to the
TPC suites.  MiniDB is relational, so this module provides the standard
trick the XML community itself used for comparisons: the XMark auction
site *shredded* into relations — people, categories, items, open bids,
and closed auctions — plus a 10-query analytic workload whose queries
keep the flavour of their XMark namesakes (point lookup, closed-auction
aggregation, bidder/seller joins, income brackets, category rollups).

Like the TPC-H-like generator, everything is produced deterministically
from a scale factor and a seed.  Scale factor 1.0 ≈ 25,500 people /
217,500 bids, mirroring XMark's document-size scaling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

import numpy as np

from repro.db.storage import Database, Table
from repro.db.types import DataType
from repro.errors import WorkloadError
from repro.workloads import distributions as dist

COUNTRIES = ("Germany", "France", "Japan", "Brazil", "India",
             "United States", "Netherlands", "Romania")

CATEGORY_NAMES = ("antiques", "books", "cameras", "coins", "computers",
                  "jewelry", "music", "sports", "stamps", "toys")

#: XMark's continents become item regions.
REGIONS = ("africa", "asia", "australia", "europe", "namerica",
           "samerica")


@dataclass(frozen=True)
class AuctionSizes:
    """Row counts at one scale factor (with small-sf minimums)."""

    people: int
    items: int
    bids: int
    closed: int

    @classmethod
    def for_scale(cls, sf: float) -> "AuctionSizes":
        if sf <= 0:
            raise WorkloadError(f"scale factor must be positive, got {sf}")
        people = max(50, int(25_500 * sf))
        items = max(40, int(21_750 * sf))
        closed = max(20, int(9_750 * sf))
        bids = max(100, int(217_500 * sf))
        return cls(people=people, items=items, bids=bids, closed=closed)


def generate_auction(sf: float = 0.01, seed: int = 7) -> Database:
    """Generate the auction-site database at scale factor ``sf``."""
    sizes = AuctionSizes.for_scale(sf)
    rng = dist.make_rng(seed)
    db = Database(name=f"auction_sf{sf}")

    db.create_table(Table.from_columns(
        "categories",
        [("category_id", DataType.INT64),
         ("category_name", DataType.STRING)],
        {"category_id": list(range(len(CATEGORY_NAMES))),
         "category_name": list(CATEGORY_NAMES)}))

    n_people = sizes.people
    person_ids = dist.sequential_ints(n_people)
    db.create_table(Table.from_columns(
        "people",
        [("person_id", DataType.INT64), ("person_name", DataType.STRING),
         ("country", DataType.STRING), ("income", DataType.FLOAT64)],
        {"person_id": person_ids,
         "person_name": dist.padded_strings("Person#", person_ids),
         "country": dist.choices(rng, n_people, COUNTRIES),
         "income": np.round(dist.normal_floats(rng, n_people, 55_000.0,
                                               18_000.0).clip(9_000), 2)}))

    n_items = sizes.items
    item_ids = dist.sequential_ints(n_items)
    db.create_table(Table.from_columns(
        "items",
        [("item_id", DataType.INT64), ("category_id", DataType.INT64),
         ("seller_id", DataType.INT64), ("region", DataType.STRING),
         ("reserve_price", DataType.FLOAT64),
         ("quantity", DataType.INT64)],
        {"item_id": item_ids,
         # Zipf-skewed categories: some categories are far more popular.
         "category_id": dist.zipf_ints(rng, n_items,
                                       len(CATEGORY_NAMES), skew=1.4),
         "seller_id": dist.uniform_ints(rng, n_items, 1, n_people),
         "region": dist.choices(rng, n_items, REGIONS),
         "reserve_price": np.round(
             dist.uniform_floats(rng, n_items, 5.0, 4_000.0), 2),
         "quantity": dist.uniform_ints(rng, n_items, 1, 10)}))

    n_bids = sizes.bids
    bid_item = dist.zipf_ints(rng, n_bids, n_items, skew=1.3) + 1
    db.create_table(Table.from_columns(
        "bids",
        [("bid_id", DataType.INT64), ("bid_item_id", DataType.INT64),
         ("bidder_id", DataType.INT64), ("amount", DataType.FLOAT64),
         ("bid_date", DataType.DATE)],
        {"bid_id": dist.sequential_ints(n_bids),
         "bid_item_id": bid_item,
         "bidder_id": dist.uniform_ints(rng, n_bids, 1, n_people),
         "amount": np.round(
             dist.uniform_floats(rng, n_bids, 1.0, 5_000.0), 2),
         "bid_date": dist.random_dates(rng, n_bids, "1998-01-01",
                                       "2001-12-31")}))

    n_closed = min(sizes.closed, n_items)
    sold_items = rng.permutation(item_ids)[:n_closed].astype(np.int64)
    db.create_table(Table.from_columns(
        "closed_auctions",
        [("sold_item_id", DataType.INT64), ("buyer_id", DataType.INT64),
         ("final_price", DataType.FLOAT64), ("sale_date", DataType.DATE)],
        {"sold_item_id": sold_items,
         "buyer_id": dist.uniform_ints(rng, n_closed, 1, n_people),
         "final_price": np.round(
             dist.uniform_floats(rng, n_closed, 10.0, 6_000.0), 2),
         "sale_date": dist.random_dates(rng, n_closed, "1999-01-01",
                                        "2001-12-31")}))
    return db


#: Ten analytic queries in the spirit of their XMark namesakes.
AUCTION_QUERIES: Dict[str, str] = {
    # XMark Q1: return the name of the person with a given id.
    "Q1_point_lookup": """
        SELECT person_name FROM people WHERE person_id = 7""",
    # XMark Q5: how many sold items cost more than 40?
    "Q5_expensive_sales": """
        SELECT COUNT(*) AS n FROM closed_auctions
        WHERE final_price > 40.0""",
    # XMark Q8: how many items did each person buy?
    "Q8_purchases_per_buyer": """
        SELECT person_name, COUNT(*) AS n_bought
        FROM closed_auctions
        JOIN people ON buyer_id = person_id
        GROUP BY person_name
        ORDER BY n_bought DESC, person_name
        LIMIT 25""",
    # XMark Q9: buyers joined with the items they bought.
    "Q9_buyer_item_join": """
        SELECT person_name, final_price
        FROM closed_auctions
        JOIN items ON sold_item_id = item_id
        JOIN people ON buyer_id = person_id
        WHERE reserve_price < final_price
        ORDER BY final_price DESC
        LIMIT 20""",
    # XMark Q11/Q12 flavour: match people to items by income bracket.
    "Q11_income_power": """
        SELECT country, COUNT(*) AS wealthy, AVG(income) AS avg_income
        FROM people
        WHERE income > 75000.0
        GROUP BY country
        ORDER BY wealthy DESC, country""",
    # XMark Q14: items whose region is given (string predicate).
    "Q14_region_listing": """
        SELECT COUNT(*) AS n, SUM(reserve_price) AS total_reserve
        FROM items
        WHERE region IN ('europe', 'asia')""",
    # XMark Q19-ish: category rollup ordered by volume.
    "Q19_category_rollup": """
        SELECT category_name, COUNT(*) AS n_items,
               AVG(reserve_price) AS avg_reserve
        FROM items
        JOIN categories ON category_id = category_id
        GROUP BY category_name
        ORDER BY n_items DESC, category_name""",
    # XMark Q20: income brackets (the CASE profile, as separate counts).
    "Q20_bracket_high": """
        SELECT COUNT(*) AS n FROM people WHERE income >= 100000.0""",
    # Bid-pressure query: hottest items by bid count (XMark "bidder"
    # section analytics).
    "BID_hot_items": """
        SELECT bid_item_id, COUNT(*) AS n_bids, MAX(amount) AS top_bid
        FROM bids
        WHERE bid_date >= DATE '2000-01-01'
        GROUP BY bid_item_id
        ORDER BY n_bids DESC, bid_item_id
        LIMIT 10""",
    # Cross-section: bidders' countries by spend.
    "BID_country_spend": """
        SELECT country, SUM(amount) AS total_bid
        FROM bids
        JOIN people ON bidder_id = person_id
        GROUP BY country
        ORDER BY total_bid DESC""",
}


def auction_query(name: str) -> str:
    """Look up one workload query by name."""
    if name not in AUCTION_QUERIES:
        raise WorkloadError(
            f"unknown auction query {name!r}; "
            f"known: {sorted(AUCTION_QUERIES)}")
    return AUCTION_QUERIES[name]


def all_auction_queries() -> Tuple[str, ...]:
    return tuple(sorted(AUCTION_QUERIES))
