"""Micro-benchmarks: isolated single-operator experiments.

The tutorial defines a micro-benchmark as a "specialized, stand-alone
piece of software isolating one particular piece of a larger system,
e.g. a single DB operator (select, join, aggregation)".  These builders
create exactly that: one table (or two), one operator, fully
parameterised data characteristics, returning a ready-to-measure MiniDB
engine plus the query exercising the operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.db.engine import Engine, EngineConfig
from repro.db.storage import Database, Table
from repro.db.types import DataType
from repro.errors import WorkloadError
from repro.workloads import distributions as dist
from repro.workloads.synthetic import selectivity_predicate_bound

_VALUE_LOW = 0
_VALUE_HIGH = 999_999


@dataclass(frozen=True)
class Microbenchmark:
    """A ready-to-run micro-benchmark: an engine plus one query."""

    name: str
    engine: Engine
    sql: str

    def run(self):
        return self.engine.execute(self.sql)


def _single_table_db(name: str, n_rows: int, seed: int,
                     extra_float: bool = True) -> Database:
    rng = dist.make_rng(seed)
    schema = [("id", DataType.INT64), ("k", DataType.INT64)]
    data = {"id": dist.sequential_ints(n_rows),
            "k": dist.uniform_ints(rng, n_rows, _VALUE_LOW, _VALUE_HIGH)}
    if extra_float:
        schema.append(("v", DataType.FLOAT64))
        data["v"] = dist.uniform_floats(rng, n_rows, 0.0, 100.0)
    db = Database(name=name)
    db.create_table(Table.from_columns("t", schema, data))
    return db


def select_microbenchmark(n_rows: int, selectivity: float,
                          seed: int = 7,
                          config: Optional[EngineConfig] = None
                          ) -> Microbenchmark:
    """Selection at a controlled selectivity over a uniform column."""
    if n_rows < 1:
        raise WorkloadError("n_rows must be >= 1")
    bound = selectivity_predicate_bound(_VALUE_LOW, _VALUE_HIGH, selectivity)
    db = _single_table_db("select_micro", n_rows, seed)
    engine = Engine(db, config)
    sql = f"SELECT id, v FROM t WHERE k < {bound}"
    return Microbenchmark(name=f"select(sel={selectivity})",
                          engine=engine, sql=sql)


def aggregate_microbenchmark(n_rows: int, n_groups: int,
                             seed: int = 7,
                             config: Optional[EngineConfig] = None
                             ) -> Microbenchmark:
    """GROUP BY with a controlled number of groups."""
    if n_rows < 1 or n_groups < 1:
        raise WorkloadError("n_rows and n_groups must be >= 1")
    rng = dist.make_rng(seed)
    db = Database(name="agg_micro")
    db.create_table(Table.from_columns(
        "t",
        [("g", DataType.INT64), ("v", DataType.FLOAT64)],
        {"g": dist.uniform_ints(rng, n_rows, 0, n_groups - 1),
         "v": dist.uniform_floats(rng, n_rows, 0.0, 100.0)}))
    engine = Engine(db, config)
    sql = "SELECT g, SUM(v) AS total, COUNT(*) AS n FROM t GROUP BY g"
    return Microbenchmark(name=f"aggregate(groups={n_groups})",
                          engine=engine, sql=sql)


def join_microbenchmark(n_left: int, n_right: int,
                        match_fraction: float = 1.0,
                        seed: int = 7,
                        config: Optional[EngineConfig] = None
                        ) -> Microbenchmark:
    """Equi-join with a controlled match rate.

    Every left row's key falls in [1, n_right]; ``match_fraction``
    controls how many left keys have a partner (the rest point past the
    right table's key range).
    """
    if n_left < 1 or n_right < 1:
        raise WorkloadError("both sides need at least one row")
    if not 0.0 <= match_fraction <= 1.0:
        raise WorkloadError(
            f"match_fraction must be in [0, 1], got {match_fraction}")
    rng = dist.make_rng(seed)
    matching = int(round(n_left * match_fraction))
    left_keys = list(dist.uniform_ints(rng, matching, 1, n_right))
    left_keys += list(dist.uniform_ints(rng, n_left - matching,
                                        n_right + 1, 2 * n_right + 1))
    db = Database(name="join_micro")
    db.create_table(Table.from_columns(
        "l",
        [("fk", DataType.INT64), ("lv", DataType.FLOAT64)],
        {"fk": left_keys,
         "lv": dist.uniform_floats(rng, n_left, 0.0, 1.0)}))
    db.create_table(Table.from_columns(
        "r",
        [("pk", DataType.INT64), ("rv", DataType.FLOAT64)],
        {"pk": dist.sequential_ints(n_right),
         "rv": dist.uniform_floats(rng, n_right, 0.0, 1.0)}))
    engine = Engine(db, config)
    sql = "SELECT SUM(lv * rv) AS dot FROM l JOIN r ON fk = pk"
    return Microbenchmark(
        name=f"join({n_left}x{n_right}, match={match_fraction})",
        engine=engine, sql=sql)


def sort_microbenchmark(n_rows: int, seed: int = 7,
                        config: Optional[EngineConfig] = None
                        ) -> Microbenchmark:
    """ORDER BY over a uniform column."""
    if n_rows < 1:
        raise WorkloadError("n_rows must be >= 1")
    db = _single_table_db("sort_micro", n_rows, seed)
    engine = Engine(db, config)
    sql = "SELECT id, k FROM t ORDER BY k"
    return Microbenchmark(name=f"sort(n={n_rows})", engine=engine, sql=sql)
