"""Scale-factor sweeps: measure a workload across sizes, fit the trend.

Scalability claims need a sweep, not two points.  :func:`run_scale_sweep`
measures a query mix hot across scale factors on freshly generated
databases, collects a factor-keyed
:class:`~repro.measurement.results.ResultSet`, and fits a power law so
the *empirical* scaling exponent — not the hoped-for one — is what gets
reported.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence, Tuple

from repro.core.regression import PowerLawFit, fit_power_law
from repro.db.engine import Engine, EngineConfig
from repro.db.storage import Database
from repro.errors import WorkloadError
from repro.measurement.results import ResultSet

DatabaseFactory = Callable[[float], Database]


@dataclass(frozen=True)
class SweepOutcome:
    """Everything one sweep produced."""

    results: ResultSet
    fit: PowerLawFit
    queries: Tuple[str, ...]

    def format(self) -> str:
        lines = [f"{'sf':>10} {'mix_ms':>12}"]
        for sf, ms in self.results.series("sf", "mix_ms"):
            lines.append(f"{sf:>10} {ms:>12.2f}")
        lines.append(f"fit: {self.fit.format()}")
        return "\n".join(lines)


def run_scale_sweep(database_factory: DatabaseFactory,
                    queries: Sequence[str],
                    scale_factors: Sequence[float],
                    config: Optional[EngineConfig] = None,
                    warmup_rounds: int = 1) -> SweepOutcome:
    """Measure a query mix hot across scale factors.

    Parameters
    ----------
    database_factory:
        Builds a fresh database for one scale factor (e.g.
        ``lambda sf: generate_tpch(sf=sf, seed=42)``).
    queries:
        The SQL mix; its total hot simulated time per scale factor is
        the ``mix_ms`` metric.
    scale_factors:
        At least three strictly positive, strictly increasing values
        (a power-law fit needs three points).
    warmup_rounds:
        Unmeasured executions of the whole mix before measuring.
    """
    queries = tuple(queries)
    if not queries:
        raise WorkloadError("the query mix cannot be empty")
    scale_factors = tuple(scale_factors)
    if len(scale_factors) < 3:
        raise WorkloadError("a sweep needs at least 3 scale factors")
    if any(sf <= 0 for sf in scale_factors):
        raise WorkloadError("scale factors must be positive")
    if list(scale_factors) != sorted(set(scale_factors)):
        raise WorkloadError(
            "scale factors must be strictly increasing")
    if warmup_rounds < 1:
        raise WorkloadError(
            "at least one warm-up round is required for a hot sweep")

    results = ResultSet("scale_sweep")
    for sf in scale_factors:
        engine = Engine(database_factory(sf), config)
        for __ in range(warmup_rounds):
            for sql in queries:
                engine.execute(sql)
        start = engine.clock.sample()
        total_rows = 0
        for sql in queries:
            total_rows += engine.execute(sql).n_rows
        elapsed = engine.clock.sample() - start
        results.add({"sf": sf},
                    {"mix_ms": elapsed.real * 1000.0,
                     "user_ms": elapsed.user * 1000.0,
                     "rows_out": float(total_rows)})
    times = [ms / 1000.0 for ms in results.column("mix_ms")]
    fit = fit_power_law(scale_factors, times)
    return SweepOutcome(results=results, fit=fit, queries=queries)
