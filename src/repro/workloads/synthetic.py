"""Declarative synthetic table generation for micro-benchmarks.

A :class:`TableSpec` describes a table as a list of :class:`ColumnSpec`
generator declarations; :func:`generate_table` materialises it
deterministically from a seed.  This is the "controllable workload and
data characteristics" half of the tutorial's micro-benchmark pros list.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Tuple

import numpy as np

from repro.db.storage import Table
from repro.db.types import DataType
from repro.errors import WorkloadError
from repro.workloads import distributions as dist

#: Generator kinds understood by :func:`generate_table`.
GENERATOR_KINDS = (
    "sequential", "uniform_int", "uniform_float", "normal", "zipf",
    "choice", "date", "padded_string",
)


@dataclass(frozen=True)
class ColumnSpec:
    """One column's generator declaration.

    ``kind`` selects the generator; ``params`` are its keyword arguments
    (see :mod:`repro.workloads.distributions`).
    """

    name: str
    dtype: DataType
    kind: str
    params: Mapping[str, Any] = field(default_factory=dict)

    def __post_init__(self):
        if self.kind not in GENERATOR_KINDS:
            raise WorkloadError(
                f"unknown generator {self.kind!r}; "
                f"known: {list(GENERATOR_KINDS)}")


@dataclass(frozen=True)
class TableSpec:
    """A whole table's declaration."""

    name: str
    n_rows: int
    columns: Tuple[ColumnSpec, ...]

    def __post_init__(self):
        if self.n_rows < 0:
            raise WorkloadError("row count must be >= 0")
        if not self.columns:
            raise WorkloadError(f"table {self.name!r} needs columns")


def _generate_column(spec: ColumnSpec, n: int,
                     rng: np.random.Generator) -> Any:
    p = dict(spec.params)
    if spec.kind == "sequential":
        return dist.sequential_ints(n, start=p.get("start", 1))
    if spec.kind == "uniform_int":
        return dist.uniform_ints(rng, n, p["low"], p["high"])
    if spec.kind == "uniform_float":
        return dist.uniform_floats(rng, n, p["low"], p["high"])
    if spec.kind == "normal":
        return dist.normal_floats(rng, n, p["mean"], p["stddev"])
    if spec.kind == "zipf":
        return dist.zipf_ints(rng, n, p["n_values"], p.get("skew", 1.2))
    if spec.kind == "choice":
        return dist.choices(rng, n, p["vocabulary"], p.get("weights"))
    if spec.kind == "date":
        return dist.random_dates(rng, n, p["start"], p["end"])
    if spec.kind == "padded_string":
        keys = dist.uniform_ints(rng, n, 0, p.get("max_key", 10 ** 6)) \
            if not p.get("sequential") else dist.sequential_ints(n)
        return dist.padded_strings(p.get("prefix", "V#"), keys,
                                   width=p.get("width", 9))
    raise WorkloadError(f"unknown generator {spec.kind!r}")


def generate_table(spec: TableSpec, seed: int) -> Table:
    """Materialise a :class:`TableSpec` deterministically."""
    rng = dist.make_rng(seed)
    data: Dict[str, Any] = {}
    for column in spec.columns:
        data[column.name] = _generate_column(column, spec.n_rows, rng)
    schema = [(c.name, c.dtype) for c in spec.columns]
    return Table.from_columns(spec.name, schema, data)


def uniform_int_table(name: str, n_rows: int, n_columns: int = 1,
                      low: int = 0, high: int = 10 ** 6,
                      seed: int = 7) -> Table:
    """A quick n-column uniform-int table (``id`` key + ``c0..``)."""
    if n_columns < 1:
        raise WorkloadError("need at least one data column")
    columns = [ColumnSpec("id", DataType.INT64, "sequential")]
    for i in range(n_columns):
        columns.append(ColumnSpec(f"c{i}", DataType.INT64, "uniform_int",
                                  {"low": low, "high": high}))
    return generate_table(
        TableSpec(name=name, n_rows=n_rows, columns=tuple(columns)), seed)


def selectivity_predicate_bound(low: int, high: int,
                                selectivity: float) -> int:
    """The threshold t such that ``col < t`` selects ~``selectivity``.

    For a uniform column on [low, high]; clamped to the range.
    """
    if not 0.0 <= selectivity <= 1.0:
        raise WorkloadError(
            f"selectivity must be in [0, 1], got {selectivity}")
    span = high - low + 1
    return low + int(round(selectivity * span))
