"""Query/workload abstractions bridging MiniDB and the harness."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Mapping, Sequence, Tuple

from repro.db.engine import Engine
from repro.errors import WorkloadError
from repro.measurement.harness import Workload


@dataclass(frozen=True)
class Query:
    """A named SQL query."""

    name: str
    sql: str

    def __post_init__(self):
        if not self.name:
            raise WorkloadError("query needs a name")
        if not self.sql or not self.sql.strip():
            raise WorkloadError(f"query {self.name!r} has empty SQL")


class QuerySet:
    """An ordered, named collection of queries."""

    def __init__(self, name: str, queries: Sequence[Query]):
        if not queries:
            raise WorkloadError(f"query set {name!r} is empty")
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise WorkloadError(f"duplicate query names in {name!r}")
        self.name = name
        self._queries: Tuple[Query, ...] = tuple(queries)
        self._by_name: Dict[str, Query] = {q.name: q for q in queries}

    def __len__(self) -> int:
        return len(self._queries)

    def __iter__(self) -> Iterator[Query]:
        return iter(self._queries)

    def __getitem__(self, name: str) -> Query:
        try:
            return self._by_name[name]
        except KeyError:
            raise WorkloadError(
                f"unknown query {name!r}; known: "
                f"{sorted(self._by_name)}") from None


class EngineQueryWorkload(Workload):
    """Adapts one SQL query on one engine to the measurement harness.

    ``setup`` accepts an optional ``'sql'`` key in the configuration so a
    design can vary the query; other factor keys are ignored here (the
    caller configures the engine per design point if needed).
    """

    def __init__(self, engine: Engine, sql: str):
        if not sql.strip():
            raise WorkloadError("empty SQL")
        self.engine = engine
        self.sql = sql
        self.last_result = None

    def setup(self, config: Mapping[str, Any]) -> None:
        sql = config.get("sql")
        if sql is not None:
            self.sql = sql

    def run(self) -> None:
        self.last_result = self.engine.execute(self.sql)

    def make_cold(self) -> None:
        self.engine.make_cold()
