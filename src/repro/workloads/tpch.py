"""A TPC-H-like benchmark: scale-factor schema generator + 22 queries.

The tutorial's measured examples all run TPC-H on MonetDB.  This module
provides the equivalent substrate for MiniDB: the eight-table TPC-H
schema (column names and value domains modelled on the specification)
generated deterministically at any scale factor, plus a 22-query analytic
workload covering the same operator mixes as TPC-H Q1-Q22, restated in
MiniDB's SQL dialect (no subqueries/outer joins — each query keeps its
original's *flavour*: Q1 scan-heavy aggregation, Q6 pure selection, Q5 a
six-table join, Q16 a large result, Q19 disjunctive predicates, ...).

Scale factor 1.0 corresponds to ~6M lineitems like real TPC-H; the test
suite uses sf=0.001 and the benchmarks sf~0.01 to stay laptop-friendly,
exactly as the tutorial's two-stage methodology would recommend.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.db.storage import Database, Table
from repro.db.types import DataType, date_to_days
from repro.errors import WorkloadError
from repro.workloads import distributions as dist

REGIONS = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

NATIONS = (
    ("ALGERIA", 0), ("ARGENTINA", 1), ("BRAZIL", 1), ("CANADA", 1),
    ("EGYPT", 4), ("ETHIOPIA", 0), ("FRANCE", 3), ("GERMANY", 3),
    ("INDIA", 2), ("INDONESIA", 2), ("IRAN", 4), ("IRAQ", 4),
    ("JAPAN", 2), ("JORDAN", 4), ("KENYA", 0), ("MOROCCO", 0),
    ("MOZAMBIQUE", 0), ("PERU", 1), ("CHINA", 2), ("ROMANIA", 3),
    ("SAUDI ARABIA", 4), ("VIETNAM", 2), ("RUSSIA", 3),
    ("UNITED KINGDOM", 3), ("UNITED STATES", 1),
)

MKT_SEGMENTS = ("AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD",
                "MACHINERY")
ORDER_PRIORITIES = ("1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED",
                    "5-LOW")
SHIP_MODES = ("AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK")
SHIP_INSTRUCTIONS = ("COLLECT COD", "DELIVER IN PERSON", "NONE",
                     "TAKE BACK RETURN")
CONTAINERS = ("SM CASE", "SM BOX", "MED BOX", "MED BAG", "LG CASE",
              "LG BOX", "JUMBO PACK", "WRAP CASE")
TYPE_SYLLABLE_1 = ("STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                   "PROMO")
TYPE_SYLLABLE_2 = ("ANODIZED", "BURNISHED", "PLATED", "POLISHED",
                   "BRUSHED")
TYPE_SYLLABLE_3 = ("TIN", "NICKEL", "BRASS", "STEEL", "COPPER")


@dataclass(frozen=True)
class TpchSizes:
    """Row counts at one scale factor (with small-sf minimums)."""

    suppliers: int
    customers: int
    parts: int
    orders: int

    @classmethod
    def for_scale(cls, sf: float) -> "TpchSizes":
        if sf <= 0:
            raise WorkloadError(f"scale factor must be positive, got {sf}")
        return cls(
            suppliers=max(10, int(10_000 * sf)),
            customers=max(30, int(150_000 * sf)),
            parts=max(25, int(200_000 * sf)),
            orders=max(50, int(1_500_000 * sf)),
        )


def _part_types(rng: np.random.Generator, n: int) -> List[str]:
    s1 = dist.choices(rng, n, TYPE_SYLLABLE_1)
    s2 = dist.choices(rng, n, TYPE_SYLLABLE_2)
    s3 = dist.choices(rng, n, TYPE_SYLLABLE_3)
    return [f"{a} {b} {c}" for a, b, c in zip(s1, s2, s3)]


def generate_tpch(sf: float = 0.01, seed: int = 42) -> Database:
    """Generate the full TPC-H-like database at scale factor ``sf``."""
    sizes = TpchSizes.for_scale(sf)
    rng = dist.make_rng(seed)
    db = Database(name=f"tpch_sf{sf}")

    # -- region / nation (fixed) -----------------------------------------
    db.create_table(Table.from_columns(
        "region",
        [("r_regionkey", DataType.INT64), ("r_name", DataType.STRING)],
        {"r_regionkey": list(range(len(REGIONS))),
         "r_name": list(REGIONS)}))

    db.create_table(Table.from_columns(
        "nation",
        [("n_nationkey", DataType.INT64), ("n_name", DataType.STRING),
         ("n_regionkey", DataType.INT64)],
        {"n_nationkey": list(range(len(NATIONS))),
         "n_name": [n for n, __ in NATIONS],
         "n_regionkey": [r for __, r in NATIONS]}))

    # -- supplier ----------------------------------------------------------
    n_supp = sizes.suppliers
    supp_keys = dist.sequential_ints(n_supp)
    db.create_table(Table.from_columns(
        "supplier",
        [("s_suppkey", DataType.INT64), ("s_name", DataType.STRING),
         ("s_nationkey", DataType.INT64), ("s_acctbal", DataType.FLOAT64)],
        {"s_suppkey": supp_keys,
         "s_name": dist.padded_strings("Supplier#", supp_keys),
         "s_nationkey": dist.uniform_ints(rng, n_supp, 0, len(NATIONS) - 1),
         "s_acctbal": dist.uniform_floats(rng, n_supp, -999.99, 9999.99)}))

    # -- customer ----------------------------------------------------------
    n_cust = sizes.customers
    cust_keys = dist.sequential_ints(n_cust)
    db.create_table(Table.from_columns(
        "customer",
        [("c_custkey", DataType.INT64), ("c_name", DataType.STRING),
         ("c_nationkey", DataType.INT64), ("c_acctbal", DataType.FLOAT64),
         ("c_mktsegment", DataType.STRING)],
        {"c_custkey": cust_keys,
         "c_name": dist.padded_strings("Customer#", cust_keys),
         "c_nationkey": dist.uniform_ints(rng, n_cust, 0, len(NATIONS) - 1),
         "c_acctbal": dist.uniform_floats(rng, n_cust, -999.99, 9999.99),
         "c_mktsegment": dist.choices(rng, n_cust, MKT_SEGMENTS)}))

    # -- part ----------------------------------------------------------------
    n_part = sizes.parts
    part_keys = dist.sequential_ints(n_part)
    brands = [f"Brand#{m}{n}" for m, n in zip(
        dist.uniform_ints(rng, n_part, 1, 5),
        dist.uniform_ints(rng, n_part, 1, 5))]
    db.create_table(Table.from_columns(
        "part",
        [("p_partkey", DataType.INT64), ("p_name", DataType.STRING),
         ("p_brand", DataType.STRING), ("p_type", DataType.STRING),
         ("p_size", DataType.INT64), ("p_container", DataType.STRING),
         ("p_retailprice", DataType.FLOAT64)],
        {"p_partkey": part_keys,
         "p_name": dist.padded_strings("Part#", part_keys),
         "p_brand": brands,
         "p_type": _part_types(rng, n_part),
         "p_size": dist.uniform_ints(rng, n_part, 1, 50),
         "p_container": dist.choices(rng, n_part, CONTAINERS),
         "p_retailprice": dist.uniform_floats(rng, n_part, 900.0, 2100.0)}))

    # -- partsupp (4 suppliers per part) --------------------------------------
    ps_part = np.repeat(part_keys, 4)
    n_ps = len(ps_part)
    db.create_table(Table.from_columns(
        "partsupp",
        [("ps_partkey", DataType.INT64), ("ps_suppkey", DataType.INT64),
         ("ps_availqty", DataType.INT64),
         ("ps_supplycost", DataType.FLOAT64)],
        {"ps_partkey": ps_part,
         "ps_suppkey": dist.uniform_ints(rng, n_ps, 1, n_supp),
         "ps_availqty": dist.uniform_ints(rng, n_ps, 1, 9999),
         "ps_supplycost": dist.uniform_floats(rng, n_ps, 1.0, 1000.0)}))

    # -- orders -----------------------------------------------------------------
    n_orders = sizes.orders
    order_keys = dist.sequential_ints(n_orders)
    order_dates = dist.random_dates(rng, n_orders, "1992-01-01",
                                    "1998-08-02")
    order_years = np.asarray(
        [1970 + d // 365 for d in (order_dates - date_to_days("1970-01-01"))],
        dtype=np.int64)
    # Proper calendar year via vectorised conversion:
    order_years = ((order_dates - date_to_days("1992-01-01")) // 365) + 1992
    db.create_table(Table.from_columns(
        "orders",
        [("o_orderkey", DataType.INT64), ("o_custkey", DataType.INT64),
         ("o_orderstatus", DataType.STRING),
         ("o_totalprice", DataType.FLOAT64),
         ("o_orderdate", DataType.DATE), ("o_orderyear", DataType.INT64),
         ("o_orderpriority", DataType.STRING),
         ("o_shippriority", DataType.INT64)],
        {"o_orderkey": order_keys,
         "o_custkey": dist.uniform_ints(rng, n_orders, 1, n_cust),
         "o_orderstatus": dist.choices(rng, n_orders, ("F", "O", "P"),
                                       weights=(0.49, 0.49, 0.02)),
         "o_totalprice": dist.uniform_floats(rng, n_orders, 850.0,
                                             555_000.0),
         "o_orderdate": order_dates,
         "o_orderyear": order_years,
         "o_orderpriority": dist.choices(rng, n_orders, ORDER_PRIORITIES),
         "o_shippriority": np.zeros(n_orders, dtype=np.int64)}))

    # -- lineitem (1..7 lines per order) ----------------------------------------
    lines_per_order = dist.uniform_ints(rng, n_orders, 1, 7)
    l_orderkey = np.repeat(order_keys, lines_per_order)
    n_li = len(l_orderkey)
    l_linenumber = np.concatenate(
        [np.arange(1, k + 1) for k in lines_per_order]).astype(np.int64)
    l_orderdate = np.repeat(order_dates, lines_per_order)
    ship_delay = dist.uniform_ints(rng, n_li, 1, 121)
    l_shipdate = l_orderdate + ship_delay
    l_commitdate = l_orderdate + dist.uniform_ints(rng, n_li, 30, 90)
    l_receiptdate = l_shipdate + dist.uniform_ints(rng, n_li, 1, 30)
    l_shipyear = ((l_shipdate - date_to_days("1992-01-01")) // 365) + 1992
    quantity = dist.uniform_ints(rng, n_li, 1, 50).astype(np.float64)
    extended = quantity * dist.uniform_floats(rng, n_li, 900.0, 2100.0)
    db.create_table(Table.from_columns(
        "lineitem",
        [("l_orderkey", DataType.INT64), ("l_partkey", DataType.INT64),
         ("l_suppkey", DataType.INT64), ("l_linenumber", DataType.INT64),
         ("l_quantity", DataType.FLOAT64),
         ("l_extendedprice", DataType.FLOAT64),
         ("l_discount", DataType.FLOAT64), ("l_tax", DataType.FLOAT64),
         ("l_returnflag", DataType.STRING),
         ("l_linestatus", DataType.STRING),
         ("l_shipdate", DataType.DATE), ("l_commitdate", DataType.DATE),
         ("l_receiptdate", DataType.DATE), ("l_shipyear", DataType.INT64),
         ("l_shipmode", DataType.STRING),
         ("l_shipinstruct", DataType.STRING)],
        {"l_orderkey": l_orderkey,
         "l_partkey": dist.uniform_ints(rng, n_li, 1, n_part),
         "l_suppkey": dist.uniform_ints(rng, n_li, 1, n_supp),
         "l_linenumber": l_linenumber,
         "l_quantity": quantity,
         "l_extendedprice": extended,
         "l_discount": np.round(
             dist.uniform_floats(rng, n_li, 0.0, 0.1001), 2),
         "l_tax": np.round(dist.uniform_floats(rng, n_li, 0.0, 0.08), 2),
         "l_returnflag": dist.choices(rng, n_li, ("A", "N", "R"),
                                      weights=(0.25, 0.5, 0.25)),
         "l_linestatus": dist.choices(rng, n_li, ("F", "O")),
         "l_shipdate": l_shipdate,
         "l_commitdate": l_commitdate,
         "l_receiptdate": l_receiptdate,
         "l_shipyear": l_shipyear,
         "l_shipmode": dist.choices(rng, n_li, SHIP_MODES),
         "l_shipinstruct": dist.choices(rng, n_li, SHIP_INSTRUCTIONS)}))

    return db


#: The 22-query workload, keyed 1..22.  Each entry keeps the operator
#: flavour of its TPC-H namesake within MiniDB's dialect.
TPCH_QUERIES: Dict[int, str] = {
    1: """SELECT l_returnflag, l_linestatus,
                 SUM(l_quantity) AS sum_qty,
                 SUM(l_extendedprice) AS sum_base_price,
                 SUM(l_extendedprice * (1 - l_discount)) AS sum_disc_price,
                 SUM(l_extendedprice * (1 - l_discount) * (1 + l_tax))
                     AS sum_charge,
                 AVG(l_quantity) AS avg_qty,
                 AVG(l_extendedprice) AS avg_price,
                 AVG(l_discount) AS avg_disc,
                 COUNT(*) AS count_order
          FROM lineitem
          WHERE l_shipdate <= DATE '1998-09-02'
          GROUP BY l_returnflag, l_linestatus
          ORDER BY l_returnflag, l_linestatus""",
    2: """SELECT s_name, s_acctbal, p_partkey, ps_supplycost
          FROM partsupp
          JOIN part ON ps_partkey = p_partkey
          JOIN supplier ON ps_suppkey = s_suppkey
          WHERE p_size = 15 AND p_type LIKE '%BRASS'
          ORDER BY s_acctbal DESC, s_name
          LIMIT 100""",
    3: """SELECT o_orderkey,
                 SUM(l_extendedprice * (1 - l_discount)) AS revenue
          FROM lineitem
          JOIN orders ON l_orderkey = o_orderkey
          JOIN customer ON o_custkey = c_custkey
          WHERE c_mktsegment = 'BUILDING'
            AND o_orderdate < DATE '1995-03-15'
            AND l_shipdate > DATE '1995-03-15'
          GROUP BY o_orderkey
          ORDER BY revenue DESC
          LIMIT 10""",
    4: """SELECT o_orderpriority, COUNT(*) AS order_count
          FROM orders
          JOIN lineitem ON o_orderkey = l_orderkey
          WHERE o_orderdate >= DATE '1993-07-01'
            AND o_orderdate < DATE '1993-10-01'
            AND l_commitdate < l_receiptdate
          GROUP BY o_orderpriority
          ORDER BY o_orderpriority""",
    5: """SELECT n_name,
                 SUM(l_extendedprice * (1 - l_discount)) AS revenue
          FROM lineitem
          JOIN orders ON l_orderkey = o_orderkey
          JOIN customer ON o_custkey = c_custkey
          JOIN supplier ON l_suppkey = s_suppkey
          JOIN nation ON s_nationkey = n_nationkey
          JOIN region ON n_regionkey = r_regionkey
          WHERE r_name = 'ASIA'
            AND o_orderdate >= DATE '1994-01-01'
            AND o_orderdate < DATE '1995-01-01'
          GROUP BY n_name
          ORDER BY revenue DESC""",
    6: """SELECT SUM(l_extendedprice * l_discount) AS revenue
          FROM lineitem
          WHERE l_shipdate >= DATE '1994-01-01'
            AND l_shipdate < DATE '1995-01-01'
            AND l_discount BETWEEN 0.05 AND 0.07
            AND l_quantity < 24""",
    7: """SELECT n_name, l_shipyear,
                 SUM(l_extendedprice * (1 - l_discount)) AS revenue
          FROM lineitem
          JOIN supplier ON l_suppkey = s_suppkey
          JOIN nation ON s_nationkey = n_nationkey
          WHERE l_shipdate >= DATE '1995-01-01'
            AND l_shipdate <= DATE '1996-12-31'
            AND n_name IN ('FRANCE', 'GERMANY')
          GROUP BY n_name, l_shipyear
          ORDER BY n_name, l_shipyear""",
    8: """SELECT o_orderyear,
                 SUM(l_extendedprice * (1 - l_discount)) AS volume
          FROM lineitem
          JOIN orders ON l_orderkey = o_orderkey
          JOIN part ON l_partkey = p_partkey
          WHERE p_type = 'ECONOMY ANODIZED STEEL'
            AND o_orderdate >= DATE '1995-01-01'
            AND o_orderdate <= DATE '1996-12-31'
          GROUP BY o_orderyear
          ORDER BY o_orderyear""",
    9: """SELECT n_name, o_orderyear,
                 SUM(l_extendedprice * (1 - l_discount)
                     - ps_supplycost * l_quantity) AS profit
          FROM lineitem
          JOIN orders ON l_orderkey = o_orderkey
          JOIN supplier ON l_suppkey = s_suppkey
          JOIN nation ON s_nationkey = n_nationkey
          JOIN partsupp ON l_partkey = ps_partkey
          GROUP BY n_name, o_orderyear
          ORDER BY n_name, o_orderyear DESC
          LIMIT 60""",
    10: """SELECT c_name,
                  SUM(l_extendedprice * (1 - l_discount)) AS revenue,
                  c_acctbal
           FROM lineitem
           JOIN orders ON l_orderkey = o_orderkey
           JOIN customer ON o_custkey = c_custkey
           WHERE o_orderdate >= DATE '1993-10-01'
             AND o_orderdate < DATE '1994-01-01'
             AND l_returnflag = 'R'
           GROUP BY c_name, c_acctbal
           ORDER BY revenue DESC
           LIMIT 20""",
    11: """SELECT ps_partkey,
                  SUM(ps_supplycost * ps_availqty) AS value
           FROM partsupp
           JOIN supplier ON ps_suppkey = s_suppkey
           JOIN nation ON s_nationkey = n_nationkey
           WHERE n_name = 'GERMANY'
           GROUP BY ps_partkey
           ORDER BY value DESC
           LIMIT 100""",
    12: """SELECT l_shipmode, COUNT(*) AS line_count,
                  SUM(o_totalprice) AS total
           FROM lineitem
           JOIN orders ON l_orderkey = o_orderkey
           WHERE l_shipmode IN ('MAIL', 'SHIP')
             AND l_commitdate < l_receiptdate
             AND l_shipdate < l_commitdate
             AND l_receiptdate >= DATE '1994-01-01'
             AND l_receiptdate < DATE '1995-01-01'
           GROUP BY l_shipmode
           ORDER BY l_shipmode""",
    13: """SELECT c_custkey, COUNT(*) AS c_count
           FROM orders
           JOIN customer ON o_custkey = c_custkey
           GROUP BY c_custkey
           ORDER BY c_count DESC, c_custkey
           LIMIT 100""",
    14: """SELECT SUM(l_extendedprice * (1 - l_discount)) AS promo_revenue
           FROM lineitem
           JOIN part ON l_partkey = p_partkey
           WHERE p_type LIKE 'PROMO%'
             AND l_shipdate >= DATE '1995-09-01'
             AND l_shipdate < DATE '1995-10-01'""",
    15: """SELECT l_suppkey,
                  SUM(l_extendedprice * (1 - l_discount)) AS total_revenue
           FROM lineitem
           WHERE l_shipdate >= DATE '1996-01-01'
             AND l_shipdate < DATE '1996-04-01'
           GROUP BY l_suppkey
           ORDER BY total_revenue DESC
           LIMIT 1""",
    16: """SELECT p_brand, p_type, p_size, COUNT(*) AS supplier_cnt
           FROM partsupp
           JOIN part ON ps_partkey = p_partkey
           WHERE p_brand <> 'Brand#45'
             AND p_size IN (49, 14, 23, 45, 19, 3, 36, 9)
           GROUP BY p_brand, p_type, p_size
           ORDER BY supplier_cnt DESC, p_brand, p_type, p_size""",
    17: """SELECT p_brand, AVG(l_quantity) AS avg_qty,
                  SUM(l_extendedprice) AS total_price
           FROM lineitem
           JOIN part ON l_partkey = p_partkey
           WHERE p_container = 'MED BOX'
           GROUP BY p_brand
           ORDER BY p_brand""",
    18: """SELECT o_orderkey, SUM(l_quantity) AS total_qty
           FROM lineitem
           JOIN orders ON l_orderkey = o_orderkey
           GROUP BY o_orderkey
           ORDER BY total_qty DESC, o_orderkey
           LIMIT 100""",
    19: """SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
           FROM lineitem
           JOIN part ON l_partkey = p_partkey
           WHERE (p_container IN ('SM CASE', 'SM BOX')
                  AND l_quantity BETWEEN 1 AND 11
                  AND p_size BETWEEN 1 AND 5)
              OR (p_container IN ('MED BAG', 'MED BOX')
                  AND l_quantity BETWEEN 10 AND 20
                  AND p_size BETWEEN 1 AND 10)
              OR (p_container IN ('LG CASE', 'LG BOX')
                  AND l_quantity BETWEEN 20 AND 30
                  AND p_size BETWEEN 1 AND 15)""",
    20: """SELECT s_name, SUM(ps_availqty) AS total_avail
           FROM partsupp
           JOIN supplier ON ps_suppkey = s_suppkey
           JOIN nation ON s_nationkey = n_nationkey
           WHERE n_name = 'CANADA'
           GROUP BY s_name
           ORDER BY s_name
           LIMIT 100""",
    21: """SELECT s_name, COUNT(*) AS numwait
           FROM lineitem
           JOIN orders ON l_orderkey = o_orderkey
           JOIN supplier ON l_suppkey = s_suppkey
           JOIN nation ON s_nationkey = n_nationkey
           WHERE o_orderstatus = 'F'
             AND l_receiptdate > l_commitdate
             AND n_name = 'SAUDI ARABIA'
           GROUP BY s_name
           ORDER BY numwait DESC, s_name
           LIMIT 100""",
    22: """SELECT c_mktsegment, COUNT(*) AS numcust,
                  SUM(c_acctbal) AS totacctbal
           FROM customer
           WHERE c_acctbal > 0.0
           GROUP BY c_mktsegment
           ORDER BY c_mktsegment""",
}


def tpch_query(number: int) -> str:
    """One of the 22 workload queries by its TPC-H number."""
    if number not in TPCH_QUERIES:
        raise WorkloadError(
            f"TPC-H query numbers run 1..22, got {number}")
    return TPCH_QUERIES[number]


def all_query_numbers() -> Tuple[int, ...]:
    return tuple(sorted(TPCH_QUERIES))
