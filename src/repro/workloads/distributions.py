"""Seeded value generators for synthetic data.

The tutorial lists what a micro-benchmark must control: "data size,
value ranges and distribution, correlation" (slide 11).  These generators
are all driven by an explicit seed so any dataset is exactly regenerable —
the repeatability requirement that slide 226's war story ("no trace about
the identity of the used documents has been kept") is about.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.db.types import date_to_days
from repro.errors import WorkloadError


def make_rng(seed: int) -> np.random.Generator:
    """A numpy Generator from an explicit integer seed."""
    if not isinstance(seed, (int, np.integer)):
        raise WorkloadError(f"seed must be an int, got {type(seed).__name__}")
    return np.random.default_rng(int(seed))


def uniform_ints(rng: np.random.Generator, n: int, low: int,
                 high: int) -> np.ndarray:
    """Uniform integers in [low, high] inclusive."""
    if n < 0:
        raise WorkloadError("n must be >= 0")
    if low > high:
        raise WorkloadError(f"empty range [{low}, {high}]")
    return rng.integers(low, high + 1, size=n, dtype=np.int64)


def uniform_floats(rng: np.random.Generator, n: int, low: float,
                   high: float) -> np.ndarray:
    """Uniform floats in [low, high)."""
    if n < 0:
        raise WorkloadError("n must be >= 0")
    if low >= high:
        raise WorkloadError(f"empty range [{low}, {high})")
    return rng.uniform(low, high, size=n)


def normal_floats(rng: np.random.Generator, n: int, mean: float,
                  stddev: float) -> np.ndarray:
    """Gaussian values."""
    if stddev < 0:
        raise WorkloadError("stddev must be >= 0")
    return rng.normal(mean, stddev, size=n)


def zipf_ints(rng: np.random.Generator, n: int, n_values: int,
              skew: float = 1.1) -> np.ndarray:
    """Zipf-distributed integers in [0, n_values), bounded by rejection.

    ``skew`` must be > 1 (numpy's zipf parameter); higher means more
    skewed toward small values.
    """
    if n_values < 1:
        raise WorkloadError("n_values must be >= 1")
    if skew <= 1.0:
        raise WorkloadError("zipf skew must be > 1")
    out = np.empty(n, dtype=np.int64)
    filled = 0
    while filled < n:
        draw = rng.zipf(skew, size=max(16, (n - filled) * 2))
        draw = draw[draw <= n_values]
        take = min(len(draw), n - filled)
        out[filled:filled + take] = draw[:take] - 1
        filled += take
    return out


def sequential_ints(n: int, start: int = 1) -> np.ndarray:
    """A dense key column start..start+n-1 (primary keys)."""
    if n < 0:
        raise WorkloadError("n must be >= 0")
    return np.arange(start, start + n, dtype=np.int64)


def choices(rng: np.random.Generator, n: int,
            vocabulary: Sequence[str],
            weights: Optional[Sequence[float]] = None) -> List[str]:
    """Strings drawn from a vocabulary, optionally weighted."""
    if not vocabulary:
        raise WorkloadError("vocabulary cannot be empty")
    p = None
    if weights is not None:
        if len(weights) != len(vocabulary):
            raise WorkloadError("weights must match the vocabulary length")
        total = float(sum(weights))
        if total <= 0:
            raise WorkloadError("weights must sum to a positive value")
        p = np.asarray(weights, dtype=float) / total
    idx = rng.choice(len(vocabulary), size=n, p=p)
    return [vocabulary[i] for i in idx]


def correlated_pair(rng: np.random.Generator, n: int,
                    correlation: float,
                    low: float = 0.0, high: float = 1.0
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Two float columns with (approximately) the given correlation.

    Implemented as a Gaussian copula scaled into [low, high); correlation
    must lie in [-1, 1].
    """
    if not -1.0 <= correlation <= 1.0:
        raise WorkloadError(
            f"correlation must be in [-1, 1], got {correlation}")
    if low >= high:
        raise WorkloadError(f"empty range [{low}, {high})")
    x = rng.normal(size=n)
    noise = rng.normal(size=n)
    y = correlation * x + np.sqrt(max(0.0, 1 - correlation ** 2)) * noise

    def scale(values: np.ndarray) -> np.ndarray:
        if len(values) == 0:
            return values
        lo, hi = values.min(), values.max()
        if hi == lo:
            return np.full_like(values, (low + high) / 2.0)
        return low + (values - lo) / (hi - lo) * (high - low)

    return scale(x), scale(y)


def random_dates(rng: np.random.Generator, n: int, start_iso: str,
                 end_iso: str) -> np.ndarray:
    """Uniform dates in [start, end], as days-since-epoch int64."""
    start = date_to_days(start_iso)
    end = date_to_days(end_iso)
    if start > end:
        raise WorkloadError(f"empty date range [{start_iso}, {end_iso}]")
    return rng.integers(start, end + 1, size=n, dtype=np.int64)


def padded_strings(prefix: str, keys: np.ndarray, width: int = 9
                   ) -> List[str]:
    """Deterministic name strings like ``'Customer#000000007'``."""
    if width < 1:
        raise WorkloadError("width must be >= 1")
    return [f"{prefix}{int(k):0{width}d}" for k in keys]
