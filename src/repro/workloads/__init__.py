"""Workloads: data generators, micro-benchmarks, TPC-H-like benchmark."""

from repro.workloads.auction import (
    AUCTION_QUERIES,
    AuctionSizes,
    all_auction_queries,
    auction_query,
    generate_auction,
)
from repro.workloads.distributions import (
    choices,
    correlated_pair,
    make_rng,
    normal_floats,
    padded_strings,
    random_dates,
    sequential_ints,
    uniform_floats,
    uniform_ints,
    zipf_ints,
)
from repro.workloads.microbench import (
    Microbenchmark,
    aggregate_microbenchmark,
    join_microbenchmark,
    select_microbenchmark,
    sort_microbenchmark,
)
from repro.workloads.queries import EngineQueryWorkload, Query, QuerySet
from repro.workloads.sweeps import SweepOutcome, run_scale_sweep
from repro.workloads.synthetic import (
    ColumnSpec,
    GENERATOR_KINDS,
    TableSpec,
    generate_table,
    selectivity_predicate_bound,
    uniform_int_table,
)
from repro.workloads.tpch import (
    TPCH_QUERIES,
    TpchSizes,
    all_query_numbers,
    generate_tpch,
    tpch_query,
)

__all__ = [
    "AUCTION_QUERIES",
    "AuctionSizes",
    "all_auction_queries",
    "auction_query",
    "generate_auction",
    "ColumnSpec",
    "EngineQueryWorkload",
    "GENERATOR_KINDS",
    "Microbenchmark",
    "Query",
    "QuerySet",
    "SweepOutcome",
    "TPCH_QUERIES",
    "TableSpec",
    "run_scale_sweep",
    "TpchSizes",
    "aggregate_microbenchmark",
    "all_query_numbers",
    "choices",
    "correlated_pair",
    "generate_table",
    "generate_tpch",
    "join_microbenchmark",
    "make_rng",
    "normal_floats",
    "padded_strings",
    "random_dates",
    "select_microbenchmark",
    "selectivity_predicate_bound",
    "sequential_ints",
    "sort_microbenchmark",
    "tpch_query",
    "uniform_floats",
    "uniform_int_table",
    "uniform_ints",
    "zipf_ints",
]
