"""A deterministic disk model.

MiniDB's data lives "on disk" in fixed-size pages.  Reading a page that is
not buffered costs seek + transfer time according to this model, which is
how the cold-vs-hot experiment (slides 33-36) gets its ~4x real-time gap:
a cold run pays the disk, a hot run finds everything in the buffer pool.

Calibrated by default to the tutorial's 5400RPM laptop disk.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Optional

from repro.errors import HardwareModelError
from repro.obs import emit_event

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector

#: Fixed page size used throughout MiniDB.
PAGE_SIZE_BYTES = 64 * 1024


@dataclass(frozen=True)
class DiskModel:
    """Seek-plus-transfer latency model.

    Sequential reads of consecutive pages pay one seek for the first page
    and pure transfer afterwards; random reads pay a seek each time.
    """

    seek_ms: float = 11.0              # ~5400RPM laptop drive
    transfer_mb_per_s: float = 35.0    # sustained sequential read, 2008-ish
    #: Optional fault hook; ticked at site ``"disk.read"`` on every
    #: physical read/write, may raise ``TransientDiskError``.
    faults: "Optional[FaultInjector]" = field(
        default=None, compare=False, repr=False)

    def __post_init__(self):
        if self.seek_ms < 0:
            raise HardwareModelError("seek time must be >= 0")
        if self.transfer_mb_per_s <= 0:
            raise HardwareModelError("transfer rate must be positive")

    @property
    def transfer_s_per_page(self) -> float:
        return PAGE_SIZE_BYTES / (self.transfer_mb_per_s * 1024 * 1024)

    def read_seconds(self, n_pages: int, sequential: bool = True) -> float:
        """Time to read ``n_pages``."""
        if n_pages < 0:
            raise HardwareModelError("page count must be >= 0")
        if n_pages == 0:
            return 0.0
        if self.faults is not None:
            self.faults.tick("disk.read")
        transfer = n_pages * self.transfer_s_per_page
        seeks = 1 if sequential else n_pages
        seek = seeks * self.seek_ms / 1000.0
        emit_event("disk.read", pages=n_pages, sequential=sequential,
                   seek_ms=seek * 1000.0, transfer_ms=transfer * 1000.0)
        return seek + transfer

    def write_seconds(self, n_pages: int, sequential: bool = True) -> float:
        """Writes cost the same as reads in this model."""
        return self.read_seconds(n_pages, sequential=sequential)

    def with_faults(self, faults: "Optional[FaultInjector]") -> "DiskModel":
        """A copy of this model wired to a fault injector (or to none)."""
        from dataclasses import replace
        return replace(self, faults=faults)


def pages_for_bytes(n_bytes: int) -> int:
    """Number of pages needed to hold ``n_bytes``."""
    if n_bytes < 0:
        raise HardwareModelError("byte count must be >= 0")
    return -(-n_bytes // PAGE_SIZE_BYTES)
