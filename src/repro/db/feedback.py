"""Q-error feedback: fold observed cardinalities back into statistics.

The tutorial's repeatability principle cuts both ways — a system that
*measures* its plans (slides 28, 52) should also *learn* from them.
After a query executes, every plan node knows its actual row count
(:mod:`repro.db.actuals`); this module harvests the observed
cardinalities whose planning-time counterparts are addressable and
records them as correction *hints* on the
:class:`~repro.db.statistics.StatisticsCatalog`:

- a ``Filter`` directly over a base-table scan maps to the scan
  estimate ``CardinalityEstimator.scan_rows(table, conjuncts)`` via
  :func:`~repro.db.statistics.scan_signature`;
- a join node maps to the enumerator's intermediate-result estimate
  over its set of base tables via
  :func:`~repro.db.statistics.join_signature`.

Recording hints bumps the catalogue version, so the plan cache
invalidates and the next planning round re-optimises with corrected
cardinalities — the E26 experiment shows the median q-error shrinking
after a single round.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Tuple

from repro.db.expressions import split_conjuncts
from repro.db.indexes import IndexScan
from repro.db.operators import (Filter, HashJoin, MergeJoin,
                                NestedLoopJoin, SeqScan)
from repro.db.plan import PlanNode
from repro.db.statistics import join_signature, scan_signature
from repro.errors import PlanError

#: A feedback signature as produced by scan_signature/join_signature.
Signature = Tuple


def _subtree_tables(node: PlanNode) -> Tuple[str, ...]:
    """Sorted base tables feeding a plan subtree."""
    tables = set()
    for n in node.walk():
        if isinstance(n, SeqScan):
            tables.add(n.table_name)
        elif isinstance(n, IndexScan):
            tables.add(n.index.table_name)
    return tuple(sorted(tables))


def harvest_feedback(plan: PlanNode) -> Dict[Signature, float]:
    """Observed cardinalities of an *executed* plan, by signature.

    Only shapes the planner can re-address are harvested: filtered
    base-table scans (``Filter`` directly over ``SeqScan``) and join
    results keyed by their base-table set.  Index scans are skipped —
    their residual conjunct list no longer matches what the planner
    estimated.  Raises :class:`PlanError` if the plan never executed.
    """
    if plan.rows_out is None:
        raise PlanError("cannot harvest feedback: plan was never executed")
    hints: Dict[Signature, float] = {}
    for node in plan.walk():
        if node.rows_out is None:
            continue
        if isinstance(node, Filter) and len(node.children) == 1 \
                and isinstance(node.children[0], SeqScan):
            table = node.children[0].table_name
            conjuncts = split_conjuncts(node.predicate)
            hints[scan_signature(table, conjuncts)] = float(node.rows_out)
        elif isinstance(node, (HashJoin, MergeJoin, NestedLoopJoin)):
            tables = _subtree_tables(node)
            if len(tables) >= 2:
                hints[join_signature(tables)] = float(node.rows_out)
    return hints


@dataclass(frozen=True)
class FeedbackReport:
    """What one feedback round recorded."""

    n_queries: int
    n_hints: int
    stats_version: int

    def format(self) -> str:
        return (f"feedback: {self.n_hints} hints from "
                f"{self.n_queries} queries "
                f"(stats v{self.stats_version})")


def feedback_round(engine, sqls: Iterable[str]) -> FeedbackReport:
    """Execute *sqls*, harvest their actuals, record the corrections.

    Recording bumps the statistics version, which invalidates any
    cached plans for these statements — the next execution re-plans
    with observed cardinalities.
    """
    hints: Dict[Signature, float] = {}
    n_queries = 0
    for sql in sqls:
        result = engine.execute(sql)
        hints.update(harvest_feedback(result.plan))
        n_queries += 1
    engine.table_stats.record_feedback(hints)
    return FeedbackReport(n_queries=n_queries, n_hints=len(hints),
                          stats_version=engine.table_stats.version)
