"""Columnar storage: columns, tables, and the database catalogue.

Cache-conscious extras live here too: string (and low-NDV integer)
columns are dictionary-encoded at load time, and every column can build
a per-block zone map (min/max/null-count per :data:`ZONE_BLOCK_ROWS`
rows) that scans use to skip blocks a pushed-down predicate can never
match.  ``NULL`` has exactly one physical representation in MiniDB:
``NaN`` in a FLOAT64 column; zone maps track it so block-level
"all rows match" proofs stay sound in NULL-heavy data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.db.types import DataType, coerce_array
from repro.errors import CatalogError

#: Rows per zone-map block.  Small enough that selective predicates
#: prune at useful granularity, large enough that the per-block metadata
#: stays negligible next to the data.
ZONE_BLOCK_ROWS = 1024

#: A sampled integer column is dictionary-encoded when its sampled NDV
#: stays at or below this bound (the "low-NDV" rule of the tentpole).
DICTIONARY_SAMPLE_ROWS = 1024
DICTIONARY_MAX_SAMPLE_NDV = 256


@dataclass(frozen=True)
class ColumnSchema:
    """Name and logical type of one column."""

    name: str
    dtype: DataType

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise CatalogError(f"bad column name {self.name!r}")


@dataclass(frozen=True)
class Dictionary:
    """Order-preserving dictionary encoding of one column.

    ``values`` holds the sorted distinct values; ``codes`` holds one
    int64 code per row (``values[codes] == data``).  Sorted values make
    code order mirror value order, so zone maps over codes prune range
    predicates exactly like zone maps over the raw values.
    """

    values: np.ndarray
    codes: np.ndarray

    @property
    def n_values(self) -> int:
        return len(self.values)

    def code_for(self, value: Any) -> Optional[int]:
        """The code of *value*, or None when it is not in the dictionary
        (an equality probe for it can prune every block)."""
        lo = int(np.searchsorted(self.values, value))
        if lo < len(self.values) and self.values[lo] == value:
            return lo
        return None

    def bytes_used(self, byte_width: int) -> int:
        return 8 * len(self.codes) + byte_width * len(self.values)


@dataclass(frozen=True)
class ZoneEntry:
    """Min/max/null-count of one block of a column.

    ``lo``/``hi`` are ``None`` for an all-NULL block (no non-null value
    to bound).
    """

    lo: Any
    hi: Any
    null_count: int


@dataclass(frozen=True)
class ZoneMap:
    """Per-block min/max/null-count metadata of one column."""

    column: str
    block_rows: int
    entries: Tuple[ZoneEntry, ...]

    @property
    def n_blocks(self) -> int:
        return len(self.entries)

    def block_slice(self, block: int, n_rows: int) -> slice:
        start = block * self.block_rows
        return slice(start, min(start + self.block_rows, n_rows))


def _build_zone_map(name: str, dtype: DataType, data: np.ndarray,
                    dictionary: Optional[Dictionary],
                    block_rows: int) -> ZoneMap:
    n = len(data)
    entries = []
    # Dictionary-encoded columns find block bounds over their (order-
    # preserving) int codes, then map back to values; numeric/date
    # columns bound directly.  NaN is the NULL encoding.
    ranked = dictionary.codes if dictionary is not None else data
    for start in range(0, max(n, 1), block_rows):
        block = ranked[start:start + block_rows]
        if len(block) == 0:
            entries.append(ZoneEntry(lo=None, hi=None, null_count=0))
            continue
        if dtype is DataType.FLOAT64:
            nulls = int(np.count_nonzero(np.isnan(block)))
            if nulls == len(block):
                entries.append(ZoneEntry(lo=None, hi=None,
                                         null_count=nulls))
                continue
            lo, hi = np.nanmin(block), np.nanmax(block)
        else:
            nulls = 0
            lo, hi = block.min(), block.max()
        if dictionary is not None:
            lo = dictionary.values[int(lo)]
            hi = dictionary.values[int(hi)]
        entries.append(ZoneEntry(lo=lo.item() if hasattr(lo, "item")
                                 else lo,
                                 hi=hi.item() if hasattr(hi, "item")
                                 else hi,
                                 null_count=nulls))
    return ZoneMap(column=name, block_rows=block_rows,
                   entries=tuple(entries))


def _should_dictionary_encode(dtype: DataType, data: np.ndarray) -> bool:
    if dtype is DataType.STRING:
        return True
    if dtype is DataType.FLOAT64 or len(data) == 0:
        return False
    # Low-NDV integers/dates: decide from a prefix sample so load time
    # stays linear for wide high-cardinality columns.
    sample = data[:DICTIONARY_SAMPLE_ROWS]
    return len(np.unique(sample)) <= DICTIONARY_MAX_SAMPLE_NDV


class Column:
    """A named, typed numpy-backed column.

    ``data`` is always the decoded array operators compute on; the
    optional :class:`Dictionary` and :class:`ZoneMap` are storage-level
    companions built lazily and cached (``Table.from_columns`` builds
    the dictionary eagerly at load time for string/low-NDV columns).
    """

    def __init__(self, schema: ColumnSchema, data: np.ndarray):
        if data.dtype != schema.dtype.numpy_dtype:
            raise CatalogError(
                f"column {schema.name!r}: array dtype {data.dtype} does not "
                f"match {schema.dtype.value}")
        self.schema = schema
        self.data = data
        self._dictionary: Optional[Dictionary] = None
        self._dictionary_built = False
        self._zone_map: Optional[ZoneMap] = None

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def dtype(self) -> DataType:
        return self.schema.dtype

    def __len__(self) -> int:
        return len(self.data)

    @property
    def bytes_used(self) -> int:
        return len(self.data) * self.dtype.byte_width

    @property
    def stored_bytes(self) -> int:
        """Bytes a scan actually reads: dictionary-encoded columns ship
        8-byte codes plus the (small) dictionary instead of raw values."""
        if self.dictionary is not None:
            return min(self.bytes_used,
                       self.dictionary.bytes_used(self.dtype.byte_width))
        return self.bytes_used

    @property
    def dictionary(self) -> Optional[Dictionary]:
        """The dictionary encoding, built on first access when eligible."""
        if not self._dictionary_built:
            self._dictionary_built = True
            if _should_dictionary_encode(self.dtype, self.data):
                values, codes = np.unique(self.data, return_inverse=True)
                self._dictionary = Dictionary(
                    values=values, codes=codes.astype(np.int64))
        return self._dictionary

    def zone_map(self, block_rows: int = ZONE_BLOCK_ROWS) -> ZoneMap:
        """The per-block zone map (cached after the first build)."""
        if self._zone_map is None or \
                self._zone_map.block_rows != block_rows:
            self._zone_map = _build_zone_map(
                self.name, self.dtype, self.data, self.dictionary,
                block_rows)
        return self._zone_map


class Table:
    """An immutable columnar table.

    Built via :meth:`from_columns`; all columns must have equal length.
    """

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name or not name.replace("_", "").isalnum():
            raise CatalogError(f"bad table name {name!r}")
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise CatalogError(
                f"table {name!r}: columns have differing lengths {lengths}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"table {name!r}: duplicate column names")
        self.name = name
        self._columns: Dict[str, Column] = {c.name: c for c in columns}
        self._order: Tuple[str, ...] = tuple(names)
        self.n_rows = len(columns[0])

    @classmethod
    def from_columns(cls, name: str,
                     schema: Sequence[Tuple[str, DataType]],
                     data: Mapping[str, Iterable[Any]]) -> "Table":
        """Build a table from raw per-column value sequences."""
        missing = [col for col, __ in schema if col not in data]
        if missing:
            raise CatalogError(f"table {name!r}: missing data for {missing}")
        extra = [col for col in data if col not in {c for c, __ in schema}]
        if extra:
            raise CatalogError(f"table {name!r}: data for unknown {extra}")
        columns = []
        for col_name, dtype in schema:
            values = data[col_name]
            seq = values if hasattr(values, "__len__") else list(values)
            column = Column(ColumnSchema(col_name, dtype),
                            coerce_array(seq, dtype))
            # Load-time dictionary encoding (string/low-NDV columns);
            # high-cardinality numeric columns skip via a prefix sample.
            column.dictionary
            columns.append(column)
        return cls(name, columns)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return self._order

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns: {list(self._order)}") from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def schema(self) -> Tuple[ColumnSchema, ...]:
        return tuple(self._columns[n].schema for n in self._order)

    @property
    def bytes_used(self) -> int:
        return sum(c.bytes_used for c in self._columns.values())

    @property
    def stored_bytes(self) -> int:
        """On-"disk" footprint with dictionary encoding applied."""
        return sum(c.stored_bytes for c in self._columns.values())

    def zone_map(self, column: str,
                 block_rows: int = ZONE_BLOCK_ROWS) -> ZoneMap:
        return self.column(column).zone_map(block_rows)

    @property
    def n_blocks(self) -> int:
        return max(1, -(-self.n_rows // ZONE_BLOCK_ROWS))

    def arrays(self) -> Dict[str, np.ndarray]:
        """All column arrays, keyed by name (shared, do not mutate)."""
        return {n: self._columns[n].data for n in self._order}

    def row(self, i: int) -> Tuple[Any, ...]:
        """One row as a tuple, in column order (for tests/inspection)."""
        if not 0 <= i < self.n_rows:
            raise CatalogError(
                f"row {i} out of range for table {self.name!r} "
                f"({self.n_rows} rows)")
        return tuple(self._columns[n].data[i] for n in self._order)


class Database:
    """The catalogue: a named collection of tables."""

    def __init__(self, name: str = "minidb"):
        self.name = name
        self._tables: Dict[str, Table] = {}
        #: Bumped on every DDL change; cached plans are keyed on it so a
        #: CREATE/DROP TABLE invalidates them without a scan.
        self.version = 0

    def create_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self.version += 1

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        self.version += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def resolve_column(self, column: str,
                       tables: Sequence[str]) -> Tuple[str, DataType]:
        """Find which of *tables* provides *column*; must be unambiguous."""
        owners = [t for t in tables if self.table(t).has_column(column)]
        if not owners:
            raise CatalogError(
                f"column {column!r} not found in tables {list(tables)}")
        if len(owners) > 1:
            raise CatalogError(
                f"column {column!r} is ambiguous across {owners}")
        return owners[0], self.table(owners[0]).column(column).dtype
