"""Columnar storage: columns, tables, and the database catalogue."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.db.types import DataType, coerce_array
from repro.errors import CatalogError


@dataclass(frozen=True)
class ColumnSchema:
    """Name and logical type of one column."""

    name: str
    dtype: DataType

    def __post_init__(self):
        if not self.name or not self.name.replace("_", "").isalnum():
            raise CatalogError(f"bad column name {self.name!r}")


class Column:
    """A named, typed numpy-backed column."""

    def __init__(self, schema: ColumnSchema, data: np.ndarray):
        if data.dtype != schema.dtype.numpy_dtype:
            raise CatalogError(
                f"column {schema.name!r}: array dtype {data.dtype} does not "
                f"match {schema.dtype.value}")
        self.schema = schema
        self.data = data

    @property
    def name(self) -> str:
        return self.schema.name

    @property
    def dtype(self) -> DataType:
        return self.schema.dtype

    def __len__(self) -> int:
        return len(self.data)

    @property
    def bytes_used(self) -> int:
        return len(self.data) * self.dtype.byte_width


class Table:
    """An immutable columnar table.

    Built via :meth:`from_columns`; all columns must have equal length.
    """

    def __init__(self, name: str, columns: Sequence[Column]):
        if not name or not name.replace("_", "").isalnum():
            raise CatalogError(f"bad table name {name!r}")
        if not columns:
            raise CatalogError(f"table {name!r} needs at least one column")
        lengths = {len(c) for c in columns}
        if len(lengths) != 1:
            raise CatalogError(
                f"table {name!r}: columns have differing lengths {lengths}")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise CatalogError(f"table {name!r}: duplicate column names")
        self.name = name
        self._columns: Dict[str, Column] = {c.name: c for c in columns}
        self._order: Tuple[str, ...] = tuple(names)
        self.n_rows = len(columns[0])

    @classmethod
    def from_columns(cls, name: str,
                     schema: Sequence[Tuple[str, DataType]],
                     data: Mapping[str, Iterable[Any]]) -> "Table":
        """Build a table from raw per-column value sequences."""
        missing = [col for col, __ in schema if col not in data]
        if missing:
            raise CatalogError(f"table {name!r}: missing data for {missing}")
        extra = [col for col in data if col not in {c for c, __ in schema}]
        if extra:
            raise CatalogError(f"table {name!r}: data for unknown {extra}")
        columns = []
        for col_name, dtype in schema:
            values = data[col_name]
            seq = values if hasattr(values, "__len__") else list(values)
            columns.append(Column(ColumnSchema(col_name, dtype),
                                  coerce_array(seq, dtype)))
        return cls(name, columns)

    @property
    def column_names(self) -> Tuple[str, ...]:
        return self._order

    def column(self, name: str) -> Column:
        try:
            return self._columns[name]
        except KeyError:
            raise CatalogError(
                f"table {self.name!r} has no column {name!r}; "
                f"columns: {list(self._order)}") from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def schema(self) -> Tuple[ColumnSchema, ...]:
        return tuple(self._columns[n].schema for n in self._order)

    @property
    def bytes_used(self) -> int:
        return sum(c.bytes_used for c in self._columns.values())

    def arrays(self) -> Dict[str, np.ndarray]:
        """All column arrays, keyed by name (shared, do not mutate)."""
        return {n: self._columns[n].data for n in self._order}

    def row(self, i: int) -> Tuple[Any, ...]:
        """One row as a tuple, in column order (for tests/inspection)."""
        if not 0 <= i < self.n_rows:
            raise CatalogError(
                f"row {i} out of range for table {self.name!r} "
                f"({self.n_rows} rows)")
        return tuple(self._columns[n].data[i] for n in self._order)


class Database:
    """The catalogue: a named collection of tables."""

    def __init__(self, name: str = "minidb"):
        self.name = name
        self._tables: Dict[str, Table] = {}
        #: Bumped on every DDL change; cached plans are keyed on it so a
        #: CREATE/DROP TABLE invalidates them without a scan.
        self.version = 0

    def create_table(self, table: Table) -> None:
        if table.name in self._tables:
            raise CatalogError(f"table {table.name!r} already exists")
        self._tables[table.name] = table
        self.version += 1

    def drop_table(self, name: str) -> None:
        if name not in self._tables:
            raise CatalogError(f"cannot drop unknown table {name!r}")
        del self._tables[name]
        self.version += 1

    def table(self, name: str) -> Table:
        try:
            return self._tables[name]
        except KeyError:
            raise CatalogError(
                f"unknown table {name!r}; known: {sorted(self._tables)}"
            ) from None

    def has_table(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def resolve_column(self, column: str,
                       tables: Sequence[str]) -> Tuple[str, DataType]:
        """Find which of *tables* provides *column*; must be unambiguous."""
        owners = [t for t in tables if self.table(t).has_column(column)]
        if not owners:
            raise CatalogError(
                f"column {column!r} not found in tables {list(tables)}")
        if len(owners) > 1:
            raise CatalogError(
                f"column {column!r} is ambiguous across {owners}")
        return owners[0], self.table(owners[0]).column(column).dtype
