"""Expression AST with vectorised evaluation over column batches.

Expressions evaluate against a *batch* — a mapping of column name to
numpy array — and return a numpy array (boolean arrays for predicates).
Each node knows its result type, the columns it touches, a cost category
for the build model (``arithmetic`` vs ``string``), and a node count used
to charge interpretation CPU cost.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, FrozenSet, Mapping, Sequence, Tuple

import numpy as np

from repro.db.types import (
    DataType,
    common_numeric_type,
    date_to_days,
    literal_type,
)
from repro.errors import PlanError, TypeMismatchError

Batch = Mapping[str, np.ndarray]
Schema = Mapping[str, DataType]


class Expr:
    """Base class for all expression nodes."""

    def evaluate(self, batch: Batch) -> np.ndarray:
        raise NotImplementedError

    def dtype(self, schema: Schema) -> DataType:
        raise NotImplementedError

    def columns(self) -> FrozenSet[str]:
        raise NotImplementedError

    def cost_category(self) -> str:
        """Build-model category: ``'string'`` if any string work, else
        ``'arithmetic'``."""
        return "arithmetic"

    def node_count(self) -> int:
        return 1

    def __str__(self) -> str:  # pragma: no cover - abstract
        raise NotImplementedError


def _batch_length(batch: Batch) -> int:
    for arr in batch.values():
        return len(arr)
    return 0


@dataclass(frozen=True)
class ColumnRef(Expr):
    name: str

    def evaluate(self, batch: Batch) -> np.ndarray:
        try:
            return batch[self.name]
        except KeyError:
            raise PlanError(
                f"column {self.name!r} not in batch "
                f"({sorted(batch)})") from None

    def dtype(self, schema: Schema) -> DataType:
        try:
            return schema[self.name]
        except KeyError:
            raise PlanError(f"column {self.name!r} not in schema") from None

    def columns(self) -> FrozenSet[str]:
        return frozenset({self.name})

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class Literal(Expr):
    value: Any
    declared: DataType = None  # set for DATE literals

    def evaluate(self, batch: Batch) -> np.ndarray:
        n = _batch_length(batch)
        value = self.value
        dt = self.declared or literal_type(value)
        if dt is DataType.STRING:
            out = np.empty(n, dtype=object)
            out[:] = value
            return out
        return np.full(n, value, dtype=dt.numpy_dtype)

    def dtype(self, schema: Schema) -> DataType:
        return self.declared or literal_type(self.value)

    def columns(self) -> FrozenSet[str]:
        return frozenset()

    def __str__(self) -> str:
        if isinstance(self.value, str):
            return f"'{self.value}'"
        return str(self.value)


def date_literal(iso_text: str) -> Literal:
    """A DATE literal stored as days-since-epoch."""
    return Literal(value=date_to_days(iso_text), declared=DataType.DATE)


_ARITH_OPS = {
    "+": np.add,
    "-": np.subtract,
    "*": np.multiply,
    "/": np.divide,
}

#: Public aliases so the kernel compiler (:mod:`repro.db.kernels`)
#: shares the exact ufunc dispatch tables the interpreter uses.
ARITH_OPS = _ARITH_OPS


@dataclass(frozen=True)
class Arithmetic(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _ARITH_OPS:
            raise PlanError(f"unknown arithmetic operator {self.op!r}")

    def evaluate(self, batch: Batch) -> np.ndarray:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        if self.op == "/":
            return np.divide(left, right,
                             out=np.zeros(len(left), dtype=np.float64),
                             where=np.asarray(right) != 0,
                             casting="unsafe")
        return _ARITH_OPS[self.op](left, right)

    def dtype(self, schema: Schema) -> DataType:
        if self.op == "/":
            common_numeric_type(self.left.dtype(schema),
                                self.right.dtype(schema))
            return DataType.FLOAT64
        return common_numeric_type(self.left.dtype(schema),
                                   self.right.dtype(schema))

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def node_count(self) -> int:
        return 1 + self.left.node_count() + self.right.node_count()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


_CMP_OPS = {
    "=": np.equal,
    "<>": np.not_equal,
    "<": np.less,
    "<=": np.less_equal,
    ">": np.greater,
    ">=": np.greater_equal,
}

CMP_OPS = _CMP_OPS


@dataclass(frozen=True)
class Comparison(Expr):
    op: str
    left: Expr
    right: Expr

    def __post_init__(self):
        if self.op not in _CMP_OPS:
            raise PlanError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, batch: Batch) -> np.ndarray:
        left = self.left.evaluate(batch)
        right = self.right.evaluate(batch)
        return _CMP_OPS[self.op](left, right)

    def dtype(self, schema: Schema) -> DataType:
        lt = self.left.dtype(schema)
        rt = self.right.dtype(schema)
        mixable = (lt == rt) or (lt.is_numeric and rt.is_numeric)
        if not mixable:
            raise TypeMismatchError(
                f"cannot compare {lt.value} with {rt.value} in {self}")
        return DataType.INT64  # boolean masks surface as int64 if projected

    def columns(self) -> FrozenSet[str]:
        return self.left.columns() | self.right.columns()

    def cost_category(self) -> str:
        if (self.left.cost_category() == "string"
                or self.right.cost_category() == "string"):
            return "string"
        return "arithmetic"

    def node_count(self) -> int:
        return 1 + self.left.node_count() + self.right.node_count()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


@dataclass(frozen=True)
class BoolOp(Expr):
    op: str  # "and" | "or"
    parts: Tuple[Expr, ...]

    def __post_init__(self):
        if self.op not in ("and", "or"):
            raise PlanError(f"unknown boolean operator {self.op!r}")
        if len(self.parts) < 2:
            raise PlanError(f"{self.op} needs at least two operands")

    def evaluate(self, batch: Batch) -> np.ndarray:
        masks = [np.asarray(p.evaluate(batch), dtype=bool)
                 for p in self.parts]
        combine = np.logical_and if self.op == "and" else np.logical_or
        out = masks[0]
        for mask in masks[1:]:
            out = combine(out, mask)
        return out

    def dtype(self, schema: Schema) -> DataType:
        for part in self.parts:
            part.dtype(schema)
        return DataType.INT64

    def columns(self) -> FrozenSet[str]:
        out: FrozenSet[str] = frozenset()
        for part in self.parts:
            out |= part.columns()
        return out

    def cost_category(self) -> str:
        if any(p.cost_category() == "string" for p in self.parts):
            return "string"
        return "arithmetic"

    def node_count(self) -> int:
        return 1 + sum(p.node_count() for p in self.parts)

    def __str__(self) -> str:
        joiner = f" {self.op.upper()} "
        return "(" + joiner.join(str(p) for p in self.parts) + ")"


@dataclass(frozen=True)
class Not(Expr):
    child: Expr

    def evaluate(self, batch: Batch) -> np.ndarray:
        return np.logical_not(np.asarray(self.child.evaluate(batch),
                                         dtype=bool))

    def dtype(self, schema: Schema) -> DataType:
        self.child.dtype(schema)
        return DataType.INT64

    def columns(self) -> FrozenSet[str]:
        return self.child.columns()

    def cost_category(self) -> str:
        return self.child.cost_category()

    def node_count(self) -> int:
        return 1 + self.child.node_count()

    def __str__(self) -> str:
        return f"(NOT {self.child})"


@dataclass(frozen=True)
class Between(Expr):
    expr: Expr
    low: Expr
    high: Expr

    def evaluate(self, batch: Batch) -> np.ndarray:
        value = self.expr.evaluate(batch)
        return np.logical_and(value >= self.low.evaluate(batch),
                              value <= self.high.evaluate(batch))

    def dtype(self, schema: Schema) -> DataType:
        self.expr.dtype(schema)
        return DataType.INT64

    def columns(self) -> FrozenSet[str]:
        return self.expr.columns() | self.low.columns() | self.high.columns()

    def node_count(self) -> int:
        return 1 + self.expr.node_count() + self.low.node_count() \
            + self.high.node_count()

    def __str__(self) -> str:
        return f"({self.expr} BETWEEN {self.low} AND {self.high})"


@dataclass(frozen=True)
class InList(Expr):
    expr: Expr
    values: Tuple[Any, ...]

    def __post_init__(self):
        if not self.values:
            raise PlanError("IN list cannot be empty")

    def evaluate(self, batch: Batch) -> np.ndarray:
        value = self.expr.evaluate(batch)
        out = np.zeros(len(value), dtype=bool)
        for v in self.values:
            out |= (value == v)
        return out

    def dtype(self, schema: Schema) -> DataType:
        self.expr.dtype(schema)
        return DataType.INT64

    def columns(self) -> FrozenSet[str]:
        return self.expr.columns()

    def cost_category(self) -> str:
        if any(isinstance(v, str) for v in self.values):
            return "string"
        return self.expr.cost_category()

    def node_count(self) -> int:
        return 1 + self.expr.node_count() + len(self.values)

    def __str__(self) -> str:
        rendered = ", ".join(
            f"'{v}'" if isinstance(v, str) else str(v) for v in self.values)
        return f"({self.expr} IN ({rendered}))"


@dataclass(frozen=True)
class Like(Expr):
    """SQL LIKE with ``%`` (any run) and ``_`` (single char) wildcards."""

    expr: Expr
    pattern: str

    def _regex(self) -> "re.Pattern[str]":
        parts = []
        for ch in self.pattern:
            if ch == "%":
                parts.append(".*")
            elif ch == "_":
                parts.append(".")
            else:
                parts.append(re.escape(ch))
        return re.compile("^" + "".join(parts) + "$")

    def evaluate(self, batch: Batch) -> np.ndarray:
        values = self.expr.evaluate(batch)
        pattern = self._regex()
        out = np.empty(len(values), dtype=bool)
        for i, v in enumerate(values):
            out[i] = bool(pattern.match(v))
        return out

    def dtype(self, schema: Schema) -> DataType:
        if self.expr.dtype(schema) is not DataType.STRING:
            raise TypeMismatchError(f"LIKE needs a string operand in {self}")
        return DataType.INT64

    def columns(self) -> FrozenSet[str]:
        return self.expr.columns()

    def cost_category(self) -> str:
        return "string"

    def node_count(self) -> int:
        return 2 + self.expr.node_count()

    def __str__(self) -> str:
        return f"({self.expr} LIKE '{self.pattern}')"


def split_conjuncts(expr: Expr) -> Tuple[Expr, ...]:
    """Flatten top-level ANDs into individual predicates (for pushdown)."""
    if isinstance(expr, BoolOp) and expr.op == "and":
        out: Tuple[Expr, ...] = ()
        for part in expr.parts:
            out += split_conjuncts(part)
        return out
    return (expr,)


def conjoin(parts: Sequence[Expr]) -> Expr:
    """Re-combine predicates with AND."""
    parts = tuple(parts)
    if not parts:
        raise PlanError("cannot conjoin zero predicates")
    if len(parts) == 1:
        return parts[0]
    return BoolOp("and", parts)


def estimate_selectivity(expr: Expr) -> float:
    """Rule-of-thumb selectivity used by the optimizer (System R style)."""
    if isinstance(expr, Comparison):
        return 0.1 if expr.op == "=" else (0.9 if expr.op == "<>" else 1 / 3)
    if isinstance(expr, Between):
        return 0.25
    if isinstance(expr, InList):
        return min(1.0, 0.1 * len(expr.values))
    if isinstance(expr, Like):
        return 0.25
    if isinstance(expr, Not):
        return max(0.0, 1.0 - estimate_selectivity(expr.child))
    if isinstance(expr, BoolOp):
        factors = [estimate_selectivity(p) for p in expr.parts]
        if expr.op == "and":
            out = 1.0
            for f in factors:
                out *= f
            return out
        out = 0.0
        for f in factors:
            out = out + f - out * f
        return min(1.0, out)
    return 1.0
