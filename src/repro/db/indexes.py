"""Hash indexes and index scans for MiniDB.

A hash index maps key values of one column to row positions.  An
:class:`IndexScan` fetches only the pages holding matching rows through
the buffer pool's *random* read path — cheap for selective equality
predicates, worse than a sequential scan once selectivity grows (random
seeks cost more per page).  That crossover is a classic database
evaluation exercise, and the ablation benchmark
``benchmarks/bench_ablation_index.py`` plots it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.context import ExecutionContext
from repro.db.disk import PAGE_SIZE_BYTES
from repro.db.expressions import ColumnRef, Comparison, Expr, Literal
from repro.db.plan import Batch, PlanNode
from repro.db.storage import Table
from repro.db.types import DataType
from repro.errors import CatalogError


@dataclass(frozen=True)
class HashIndex:
    """An immutable hash index over one column of one table.

    ``positions`` maps each distinct key value to the sorted row
    positions holding it.  ``rows_per_page`` reflects the column-store
    layout used to translate row positions into page numbers.
    """

    table_name: str
    column_name: str
    positions: Dict[Any, np.ndarray]
    n_rows: int
    row_bytes: int

    @classmethod
    def build(cls, table: Table, column_name: str) -> "HashIndex":
        column = table.column(column_name)
        buckets: Dict[Any, List[int]] = {}
        for i, value in enumerate(column.data):
            buckets.setdefault(value, []).append(i)
        positions = {key: np.asarray(rows, dtype=np.int64)
                     for key, rows in buckets.items()}
        row_bytes = max(1, table.bytes_used // max(1, table.n_rows))
        return cls(table_name=table.name, column_name=column_name,
                   positions=positions, n_rows=table.n_rows,
                   row_bytes=row_bytes)

    @property
    def n_keys(self) -> int:
        return len(self.positions)

    def lookup(self, key: Any) -> np.ndarray:
        """Row positions holding *key* (empty array when absent)."""
        return self.positions.get(key, np.empty(0, dtype=np.int64))

    def pages_for_rows(self, rows: np.ndarray) -> Tuple[int, ...]:
        """Distinct page numbers the given row positions live on."""
        if rows.size == 0:
            return ()
        rows_per_page = max(1, PAGE_SIZE_BYTES // self.row_bytes)
        return tuple(sorted({int(r) // rows_per_page for r in rows}))

    def estimated_selectivity(self, key: Any) -> float:
        if self.n_rows == 0:
            return 0.0
        return len(self.lookup(key)) / self.n_rows


class IndexCatalog:
    """Registry of hash indexes, keyed by (table, column)."""

    def __init__(self):
        self._indexes: Dict[Tuple[str, str], HashIndex] = {}
        #: Bumped on create/drop; part of the plan-cache key, since an
        #: index change can flip the optimizer's access-path choice.
        self.version = 0

    def create(self, table: Table, column_name: str) -> HashIndex:
        key = (table.name, column_name)
        if key in self._indexes:
            raise CatalogError(
                f"index on {table.name}.{column_name} already exists")
        table.column(column_name)  # raises on unknown column
        index = HashIndex.build(table, column_name)
        self._indexes[key] = index
        self.version += 1
        return index

    def drop(self, table_name: str, column_name: str) -> None:
        key = (table_name, column_name)
        if key not in self._indexes:
            raise CatalogError(
                f"no index on {table_name}.{column_name}")
        del self._indexes[key]
        self.version += 1

    def find(self, table_name: str,
             column_name: str) -> Optional[HashIndex]:
        return self._indexes.get((table_name, column_name))

    def indexes_on(self, table_name: str) -> Tuple[HashIndex, ...]:
        return tuple(ix for (t, __), ix in sorted(self._indexes.items())
                     if t == table_name)


class IndexScan(PlanNode):
    """Fetch rows matching ``column = literal`` through a hash index.

    Touched pages are read via the buffer pool's random path (one seek
    per missed page), then the surviving rows are materialised.
    """

    category = "hash"

    def __init__(self, index: HashIndex, key: Any,
                 columns: Optional[Sequence[str]] = None):
        super().__init__()
        self.index = index
        self.key = key
        self.columns = tuple(columns) if columns is not None else None

    def name(self) -> str:
        cols = ", ".join(self.columns) if self.columns else "*"
        return (f"IndexScan({self.index.table_name}."
                f"{self.index.column_name} = {self.key!r}: {cols})")

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        table = ctx.database.table(self.index.table_name)
        names = self.columns if self.columns is not None \
            else table.column_names
        return {n: table.column(n).dtype for n in names}

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        return float(len(self.index.lookup(self.key)))

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        table = ctx.database.table(self.index.table_name)
        rows = self.index.lookup(self.key)
        pages = self.index.pages_for_rows(rows)
        if pages:
            ctx.buffer_pool.read_pages_random(
                table.name, table.bytes_used, pages)
        # Probe cost plus per-fetched-value materialisation.
        names = self.columns if self.columns is not None \
            else table.column_names
        ctx.charge_cpu("hash", ctx.costs.hash_probe_ns_per_row
                       * max(1, rows.size))
        ctx.charge_cpu("scan", ctx.costs.scan_ns_per_value
                       * rows.size * len(names))
        ctx.charge_tuples(rows.size)
        return {name: table.column(name).data[rows] for name in names}


def try_index_scan(ctx_database, index_catalog: IndexCatalog,
                   table_name: str, predicate: Expr,
                   columns: Optional[Sequence[str]],
                   max_selectivity: float = 0.05
                   ) -> Optional[IndexScan]:
    """Return an IndexScan if the predicate is an indexable equality.

    The predicate must be ``ColumnRef = Literal`` (either order) on an
    indexed column, and the actual key selectivity must not exceed
    ``max_selectivity`` (beyond that a sequential scan wins — random
    page reads seek per page).
    """
    if not isinstance(predicate, Comparison) or predicate.op != "=":
        return None
    sides = (predicate.left, predicate.right)
    column_ref = next((s for s in sides if isinstance(s, ColumnRef)), None)
    literal = next((s for s in sides if isinstance(s, Literal)), None)
    if column_ref is None or literal is None:
        return None
    index = index_catalog.find(table_name, column_ref.name)
    if index is None:
        return None
    if index.estimated_selectivity(literal.value) > max_selectivity:
        return None
    return IndexScan(index, literal.value, columns=columns)
