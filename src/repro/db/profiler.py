"""Query profiling: phase and per-operator breakdowns.

Slide 28 shows MonetDB's ``-t`` output (Trans/Shred/Query/Print phases)
and slide 54 contrasts a MySQL gprof trace with a MonetDB MIL trace for
TPC-H Q1.  MiniDB exposes the same introspection: every executed query
can report where its (simulated) time went, per phase and per operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Mapping, Tuple

from repro.db.plan import PlanNode
from repro.errors import DatabaseError

#: Engine phases, in execution order.
PHASES = ("parse", "optimize", "execute", "print")


@dataclass(frozen=True)
class OperatorTiming:
    """One operator's contribution to the execute phase."""

    operator: str
    self_ms: float
    rows: int

    def share_of(self, execute_ms: float) -> float:
        """This operator's fraction of the execute phase, in [0, 1]."""
        return self.self_ms / execute_ms if execute_ms else 0.0

    def format(self, execute_ms: float) -> str:
        """One report row.  The share denominator is the *execute
        phase* only — parse/optimize/print time is not operator time,
        so including it would understate every operator."""
        share = 100.0 * self.share_of(execute_ms)
        return (f"  {self.operator:<44} {self.self_ms:>10.3f} ms "
                f"{share:>5.1f}%  rows={self.rows}")


@dataclass(frozen=True)
class ProfileReport:
    """The full timing breakdown of one query execution (simulated ms)."""

    sql: str
    phase_ms: Mapping[str, float]
    operators: Tuple[OperatorTiming, ...]

    def __post_init__(self):
        unknown = [p for p in self.phase_ms if p not in PHASES]
        if unknown:
            raise DatabaseError(
                f"unknown phases {unknown}; known: {list(PHASES)}")

    @property
    def total_ms(self) -> float:
        return sum(self.phase_ms.values())

    @property
    def execute_ms(self) -> float:
        return self.phase_ms.get("execute", 0.0)

    def phase_share(self, phase: str) -> float:
        """Fraction of total time spent in one phase."""
        if phase not in PHASES:
            raise DatabaseError(f"unknown phase {phase!r}")
        total = self.total_ms
        return self.phase_ms.get(phase, 0.0) / total if total else 0.0

    def dominant_operator(self) -> OperatorTiming:
        if not self.operators:
            raise DatabaseError("profile has no operator timings")
        return max(self.operators, key=lambda op: op.self_ms)

    def format(self) -> str:
        """MonetDB-``-t``-style rendering (slide 29)."""
        lines = []
        for phase in PHASES:
            if phase in self.phase_ms:
                label = phase.capitalize()
                lines.append(f"{label:<9}{self.phase_ms[phase]:>10.3f} msec")
        lines.append(f"{'Total':<9}{self.total_ms:>10.3f} msec")
        if self.operators:
            lines.append("operators:")
            execute = self.execute_ms
            for op in self.operators:
                lines.append(op.format(execute))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able breakdown (for trace attachments and reports).

        Operator shares are normalised against the execute phase, the
        same denominator :meth:`format` prints.
        """
        execute = self.execute_ms
        return {
            "sql": self.sql,
            "phase_ms": dict(self.phase_ms),
            "total_ms": self.total_ms,
            "execute_ms": execute,
            "operators": [
                {
                    "operator": op.operator,
                    "self_ms": op.self_ms,
                    "rows": op.rows,
                    "share_of_execute": op.share_of(execute),
                }
                for op in self.operators
            ],
        }


def operator_timings(plan: PlanNode) -> Tuple[OperatorTiming, ...]:
    """Collect per-operator self times from an executed plan."""
    timings = []
    for node in plan.walk():
        if node.rows_out is None:
            raise DatabaseError(
                f"plan node {node.name()} was never executed")
        timings.append(OperatorTiming(operator=node.name(),
                                      self_ms=node.self_seconds * 1000.0,
                                      rows=node.rows_out))
    return tuple(timings)
