"""Query profiling: phase and per-operator breakdowns.

Slide 28 shows MonetDB's ``-t`` output (Trans/Shred/Query/Print phases)
and slide 54 contrasts a MySQL gprof trace with a MonetDB MIL trace for
TPC-H Q1.  MiniDB exposes the same introspection: every executed query
can report where its (simulated) time went, per phase and per operator.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence, Tuple

from repro.db.plan import PlanNode
from repro.errors import DatabaseError

#: Engine phases, in execution order.
PHASES = ("parse", "optimize", "execute", "print")


@dataclass(frozen=True)
class OperatorTiming:
    """One operator's contribution to the execute phase."""

    operator: str
    self_ms: float
    rows: int

    def format(self, total_ms: float) -> str:
        share = (100.0 * self.self_ms / total_ms) if total_ms else 0.0
        return (f"  {self.operator:<44} {self.self_ms:>10.3f} ms "
                f"{share:>5.1f}%  rows={self.rows}")


@dataclass(frozen=True)
class ProfileReport:
    """The full timing breakdown of one query execution (simulated ms)."""

    sql: str
    phase_ms: Mapping[str, float]
    operators: Tuple[OperatorTiming, ...]

    def __post_init__(self):
        unknown = [p for p in self.phase_ms if p not in PHASES]
        if unknown:
            raise DatabaseError(
                f"unknown phases {unknown}; known: {list(PHASES)}")

    @property
    def total_ms(self) -> float:
        return sum(self.phase_ms.values())

    @property
    def execute_ms(self) -> float:
        return self.phase_ms.get("execute", 0.0)

    def phase_share(self, phase: str) -> float:
        """Fraction of total time spent in one phase."""
        if phase not in PHASES:
            raise DatabaseError(f"unknown phase {phase!r}")
        total = self.total_ms
        return self.phase_ms.get(phase, 0.0) / total if total else 0.0

    def dominant_operator(self) -> OperatorTiming:
        if not self.operators:
            raise DatabaseError("profile has no operator timings")
        return max(self.operators, key=lambda op: op.self_ms)

    def format(self) -> str:
        """MonetDB-``-t``-style rendering (slide 29)."""
        lines = []
        for phase in PHASES:
            if phase in self.phase_ms:
                label = phase.capitalize()
                lines.append(f"{label:<9}{self.phase_ms[phase]:>10.3f} msec")
        lines.append(f"{'Total':<9}{self.total_ms:>10.3f} msec")
        if self.operators:
            lines.append("operators:")
            execute = self.execute_ms
            for op in self.operators:
                lines.append(op.format(execute))
        return "\n".join(lines)


def operator_timings(plan: PlanNode) -> Tuple[OperatorTiming, ...]:
    """Collect per-operator self times from an executed plan."""
    timings = []
    for node in plan.walk():
        if node.rows_out is None:
            raise DatabaseError(
                f"plan node {node.name()} was never executed")
        timings.append(OperatorTiming(operator=node.name(),
                                      self_ms=node.self_seconds * 1000.0,
                                      rows=node.rows_out))
    return tuple(timings)
