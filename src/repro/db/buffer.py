"""The buffer pool: cached pages, LRU eviction, hot/cold state.

The buffer pool decides whether a table scan is *hot* (all pages resident,
no I/O charged) or *cold* (pages read from the
:class:`~repro.db.disk.DiskModel`, charging simulated system time to the
engine's :class:`~repro.measurement.clocks.VirtualClock`).
:meth:`BufferPool.flush` restores the cold state — the ``make_cold`` hook
the run protocols need.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Optional, Tuple

from repro.db.disk import DiskModel, pages_for_bytes
from repro.errors import DatabaseError
from repro.hardware.counters import HardwareCounters
from repro.measurement.clocks import VirtualClock
from repro.obs import maybe_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector

PageId = Tuple[str, int]


class BufferPool:
    """An LRU page cache in front of the simulated disk.

    Parameters
    ----------
    capacity_pages:
        Pool size; tables larger than the pool can never run fully hot,
        which reproduces the tutorial's point that "hot" needs the data to
        actually fit close to the CPU.
    disk:
        The latency model paid on misses.
    clock:
        Simulated time sink; misses advance its I/O (system) component.
    counters:
        Optional shared counters; ``io_reads`` tracks pages read.
    policy:
        Eviction policy: ``"lru"`` (default) or ``"mru"``.  LRU suffers
        *sequential flooding* — a repeated scan of a table one page
        larger than the pool evicts every page just before its reuse —
        while MRU keeps a stable prefix resident, the classic textbook
        fix (see ``benchmarks/bench_ablation_buffer.py``).
    faults:
        Optional fault injector; each scan ticks site ``"buffer.read"``,
        which may raise ``PageCorruptionError``.
    """

    POLICIES = ("lru", "mru")

    def __init__(self, capacity_pages: int, disk: DiskModel,
                 clock: VirtualClock,
                 counters: Optional[HardwareCounters] = None,
                 policy: str = "lru",
                 faults: "Optional[FaultInjector]" = None):
        if capacity_pages < 1:
            raise DatabaseError("buffer pool needs at least one page")
        if policy not in self.POLICIES:
            raise DatabaseError(
                f"unknown eviction policy {policy!r}; "
                f"known: {list(self.POLICIES)}")
        self.policy = policy
        self.capacity_pages = capacity_pages
        self.disk = disk
        self.clock = clock
        self.counters = counters if counters is not None else HardwareCounters()
        self.faults = faults
        self._resident: "OrderedDict[PageId, bool]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._resident)

    def is_resident(self, page: PageId) -> bool:
        return page in self._resident

    def table_pages(self, table_name: str, n_bytes: int) -> Tuple[PageId, ...]:
        """The page ids a table of ``n_bytes`` occupies."""
        return tuple((table_name, i) for i in range(pages_for_bytes(n_bytes)))

    def read_table(self, table_name: str, n_bytes: int) -> int:
        """Scan a table through the pool; returns pages read from disk.

        Misses are charged to the clock as one sequential disk read (the
        scan fetches missing pages in one pass).
        """
        with maybe_span("buffer.read_table", "buffer",
                        table=table_name) as span:
            if self.faults is not None:
                self.faults.tick("buffer.read")
            pages = self.table_pages(table_name, n_bytes)
            evicted_before = self.evictions
            missing = 0
            for page in pages:
                if page in self._resident:
                    self._resident.move_to_end(page)
                    self.hits += 1
                else:
                    self.misses += 1
                    missing += 1
                    self._admit(page)
            if missing:
                self.clock.advance(
                    io_seconds=self.disk.read_seconds(missing,
                                                      sequential=True))
                self.counters.increment("io_reads", missing)
            if span is not None:
                span.set(pages=len(pages),
                         hits=len(pages) - missing, misses=missing,
                         evictions=self.evictions - evicted_before)
            return missing

    def read_pages_random(self, table_name: str, n_bytes: int,
                          page_numbers: Tuple[int, ...]) -> int:
        """Random page reads (index-style access); seeks per miss."""
        with maybe_span("buffer.read_random", "buffer",
                        table=table_name) as span:
            if self.faults is not None:
                self.faults.tick("buffer.read")
            total = pages_for_bytes(n_bytes)
            bad = [p for p in page_numbers if not 0 <= p < total]
            if bad:
                raise DatabaseError(
                    f"pages {bad} out of range for table {table_name!r} "
                    f"({total} pages)")
            evicted_before = self.evictions
            missing = 0
            for number in page_numbers:
                page = (table_name, number)
                if page in self._resident:
                    self._resident.move_to_end(page)
                    self.hits += 1
                else:
                    self.misses += 1
                    missing += 1
                    self._admit(page)
            if missing:
                self.clock.advance(
                    io_seconds=self.disk.read_seconds(missing,
                                                      sequential=False))
                self.counters.increment("io_reads", missing)
            if span is not None:
                span.set(pages=len(page_numbers),
                         hits=len(page_numbers) - missing,
                         misses=missing,
                         evictions=self.evictions - evicted_before)
            return missing

    def _admit(self, page: PageId) -> None:
        # Evict before inserting so MRU removes the previous most-recent
        # page rather than the one being admitted.
        while len(self._resident) >= self.capacity_pages:
            self._resident.popitem(last=(self.policy == "mru"))
            self.evictions += 1
        self._resident[page] = True
        self._resident.move_to_end(page)

    def fits(self, n_bytes: int) -> bool:
        """Can a table of this size be fully resident?"""
        return pages_for_bytes(n_bytes) <= self.capacity_pages

    def flush(self) -> None:
        """Drop every page: the cold state (slide 32's 'clean state')."""
        self._resident.clear()

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def reset_statistics(self) -> None:
        self.hits = 0
        self.misses = 0
        self.evictions = 0
