"""A small SQL dialect for MiniDB.

Supported grammar (one SELECT statement, no nesting)::

    SELECT select_item [, ...]
    FROM table [JOIN table ON col = col ...]
    [WHERE predicate]
    [GROUP BY col [, ...]]
    [HAVING predicate-over-output-aliases]
    [ORDER BY col_or_alias [ASC|DESC] [, ...]]
    [LIMIT n]

Select items are expressions with optional ``AS alias``, or aggregates
``SUM|AVG|MIN|MAX(expr)`` and ``COUNT(*)``/``COUNT(expr)``.  Predicates
support comparison operators, ``AND``/``OR``/``NOT``, ``BETWEEN``,
``IN (...)``, ``LIKE``, arithmetic, numeric/string literals, and
``DATE 'YYYY-MM-DD'`` literals.

The parser builds a :class:`SelectStatement`; planning happens in
:mod:`repro.db.optimizer`.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Any, List, Optional, Sequence, Tuple

from repro.db.expressions import (
    Arithmetic,
    Between,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Like,
    Literal,
    Not,
    date_literal,
)
from repro.db.operators import AggFunc
from repro.errors import SqlSyntaxError

_KEYWORDS = {
    "select", "distinct", "from", "where", "group", "order", "by",
    "having", "limit", "join", "on", "and", "or", "not", "between",
    "in", "like", "as", "asc", "desc", "date", "sum", "count", "avg",
    "min", "max",
}

_TOKEN_RE = re.compile(r"""
    \s*(?:
        (?P<hint>/\*\+(?:[^*]|\*(?!/))*\*/)
      | (?P<comment>/\*(?:[^*]|\*(?!/))*\*/)
      | (?P<number>\d+\.\d+|\.\d+|\d+)
      | (?P<string>'(?:[^']|'')*')
      | (?P<ident>[A-Za-z_][A-Za-z_0-9]*)
      | (?P<op><=|>=|<>|!=|=|<|>|\+|-|\*|/|\(|\)|,)
    )""", re.VERBOSE)


@dataclass(frozen=True)
class Token:
    kind: str   # number | string | ident | keyword | op | eof
    text: str
    position: int


def tokenize(sql: str) -> List[Token]:
    """Split SQL text into tokens; raises on unrecognised characters."""
    tokens: List[Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            remainder = sql[pos:].strip()
            if not remainder:
                break
            raise SqlSyntaxError(
                f"unexpected character {remainder[0]!r} at position {pos}")
        pos = match.end()
        if match.group("hint") is not None:
            # /*+ ... */ plan hints survive tokenization (and thus the
            # normalised plan-cache key); the canonical text collapses
            # whitespace so formatting never splits the cache.
            body = match.group("hint")[3:-2]
            tokens.append(Token("hint", " ".join(body.split()),
                                match.start()))
        elif match.group("comment") is not None:
            pass  # plain /* ... */ comments are skipped entirely
        elif match.group("number") is not None:
            tokens.append(Token("number", match.group("number"),
                                match.start()))
        elif match.group("string") is not None:
            raw = match.group("string")[1:-1].replace("''", "'")
            tokens.append(Token("string", raw, match.start()))
        elif match.group("ident") is not None:
            text = match.group("ident")
            kind = "keyword" if text.lower() in _KEYWORDS else "ident"
            tokens.append(Token(kind, text, match.start()))
        else:
            op = match.group("op")
            tokens.append(Token("op", "<>" if op == "!=" else op,
                                match.start()))
    tokens.append(Token("eof", "", len(sql)))
    return tokens


def normalize_sql(sql: str) -> Tuple[Tuple[str, str], ...]:
    """A whitespace/case-insensitive plan-cache key for *sql*.

    Two statements normalise equal iff they tokenize to the same
    sequence: keywords compare case-folded, identifiers and literals
    verbatim (``WHERE city = 'Uppsala'`` must not match ``'uppsala'``).
    Token positions are dropped so formatting never splits the cache.
    """
    return tuple(
        (t.kind, t.text.lower() if t.kind == "keyword" else t.text)
        for t in tokenize(sql))


_EXPLAIN_RE = re.compile(r"^\s*explain(\s+analyze)?\b\s*",
                         re.IGNORECASE)


def strip_explain(sql: str) -> Tuple[Optional[str], str]:
    """Split an optional ``EXPLAIN [ANALYZE]`` prefix off *sql*.

    Returns ``(mode, rest)`` where ``mode`` is ``"analyze"``,
    ``"explain"`` or ``None`` and ``rest`` is the statement proper.
    The engine routes ``"explain"`` to :meth:`~repro.db.engine.Engine.
    explain` and ``"analyze"`` to :meth:`~repro.db.engine.Engine.
    explain_analyze`; :func:`parse_select` itself never sees the prefix.
    """
    match = _EXPLAIN_RE.match(sql)
    if match is None:
        return None, sql
    return ("analyze" if match.group(1) else "explain"), sql[match.end():]


#: Recognised join operators / scan kinds / build sides in hints.
_HINT_JOIN_OPS = ("hash", "merge", "loop", "radix")
_HINT_SCANS = ("seq", "index")
_HINT_BUILDS = ("left", "right")

_HINT_CLAUSE_RE = re.compile(r"([A-Za-z_]+)\s*\(([^)]*)\)")


@dataclass(frozen=True)
class PlanHints:
    """Optimizer hints from ``/*+ ... */`` comments.

    Supported clauses (PostBOUND-style, one or more per comment)::

        JOIN_ORDER(t1 t2 t3)   -- force this left-deep join order
        JOIN_OP(t hash|merge|loop)  -- operator for the join adding t
        SCAN(t seq|index)      -- access path for table t
        BUILD(t left|right)    -- hash-join build side for the join
                                  that introduces t

    Association tuples are sorted so hints hash/compare structurally.
    """

    join_order: Tuple[str, ...] = ()
    join_ops: Tuple[Tuple[str, str], ...] = ()
    scans: Tuple[Tuple[str, str], ...] = ()
    build_sides: Tuple[Tuple[str, str], ...] = ()

    @property
    def is_empty(self) -> bool:
        return not (self.join_order or self.join_ops or self.scans
                    or self.build_sides)

    def join_op_for(self, table: str) -> Optional[str]:
        return dict(self.join_ops).get(table)

    def scan_for(self, table: str) -> Optional[str]:
        return dict(self.scans).get(table)

    def build_side_for(self, table: str) -> Optional[str]:
        return dict(self.build_sides).get(table)


EMPTY_HINTS = PlanHints()


def parse_hints(text: str) -> PlanHints:
    """Parse the body of one or more ``/*+ ... */`` comments."""
    leftover = _HINT_CLAUSE_RE.sub("", text).strip()
    if leftover:
        raise SqlSyntaxError(
            f"unrecognised hint text {leftover!r}; expected "
            f"NAME(args) clauses")
    join_order: Tuple[str, ...] = ()
    join_ops: List[Tuple[str, str]] = []
    scans: List[Tuple[str, str]] = []
    builds: List[Tuple[str, str]] = []

    def pair(name: str, args: List[str],
             valid: Tuple[str, ...]) -> Tuple[str, str]:
        if len(args) != 2 or args[1].lower() not in valid:
            raise SqlSyntaxError(
                f"{name} hint expects (table {'|'.join(valid)}), "
                f"got {args}")
        return (args[0], args[1].lower())

    for match in _HINT_CLAUSE_RE.finditer(text):
        name = match.group(1).upper()
        args = match.group(2).replace(",", " ").split()
        if name == "JOIN_ORDER":
            if join_order:
                raise SqlSyntaxError("duplicate JOIN_ORDER hint")
            if len(args) < 2 or len(set(args)) != len(args):
                raise SqlSyntaxError(
                    f"JOIN_ORDER needs >= 2 distinct tables, got {args}")
            join_order = tuple(args)
        elif name == "JOIN_OP":
            join_ops.append(pair("JOIN_OP", args, _HINT_JOIN_OPS))
        elif name == "SCAN":
            scans.append(pair("SCAN", args, _HINT_SCANS))
        elif name == "BUILD":
            builds.append(pair("BUILD", args, _HINT_BUILDS))
        else:
            raise SqlSyntaxError(
                f"unknown hint {name!r}; supported: JOIN_ORDER, "
                f"JOIN_OP, SCAN, BUILD")
    for name, pairs in (("JOIN_OP", join_ops), ("SCAN", scans),
                        ("BUILD", builds)):
        tables = [t for t, __ in pairs]
        if len(set(tables)) != len(tables):
            raise SqlSyntaxError(f"duplicate {name} hint for one table")
    return PlanHints(join_order=join_order,
                     join_ops=tuple(sorted(join_ops)),
                     scans=tuple(sorted(scans)),
                     build_sides=tuple(sorted(builds)))


def hint_comment(join_order: Sequence[str]) -> str:
    """Render *join_order* as a ``/*+ JOIN_ORDER(...) */`` hint.

    The inverse of :func:`parse_hints` for the one clause every
    backend adapter understands; :mod:`repro.db.systems` uses it to
    force the same logical join order across engines.
    """
    order = tuple(join_order)
    if len(order) < 2 or len(set(order)) != len(order):
        raise SqlSyntaxError(
            f"JOIN_ORDER needs >= 2 distinct tables, got {list(order)}")
    return f"/*+ JOIN_ORDER({' '.join(order)}) */"


@dataclass(frozen=True)
class SelectItem:
    """One output column: a plain expression or an aggregate."""

    expr: Optional[Expr]        # None only for COUNT(*)
    alias: str
    agg: Optional[AggFunc] = None

    @property
    def is_aggregate(self) -> bool:
        return self.agg is not None


@dataclass(frozen=True)
class JoinClause:
    table: str
    left_column: str
    right_column: str


@dataclass(frozen=True)
class SelectStatement:
    """The parsed form of a query, before planning."""

    items: Tuple[SelectItem, ...]
    table: str
    joins: Tuple[JoinClause, ...] = ()
    where: Optional[Expr] = None
    group_by: Tuple[str, ...] = ()
    order_by: Tuple[Tuple[str, bool], ...] = ()
    limit: Optional[int] = None
    distinct: bool = False
    having: Optional[Expr] = None
    hints: PlanHints = EMPTY_HINTS

    @property
    def tables(self) -> Tuple[str, ...]:
        return (self.table,) + tuple(j.table for j in self.joins)

    @property
    def has_aggregates(self) -> bool:
        return any(item.is_aggregate for item in self.items)


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str):
        self.sql = sql
        tokens = tokenize(sql)
        # Hints may appear anywhere a comment may; gather them all and
        # parse the grammar over the remaining token stream.
        hint_text = " ".join(t.text for t in tokens if t.kind == "hint")
        self.hints = parse_hints(hint_text) if hint_text else EMPTY_HINTS
        self.tokens = [t for t in tokens if t.kind != "hint"]
        self.index = 0

    # -- token helpers -----------------------------------------------------

    def peek(self) -> Token:
        return self.tokens[self.index]

    def next(self) -> Token:
        token = self.tokens[self.index]
        self.index += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        token = self.peek()
        return SqlSyntaxError(
            f"{message} at position {token.position} "
            f"(near {token.text!r}) in: {self.sql!r}")

    def accept_keyword(self, word: str) -> bool:
        token = self.peek()
        if token.kind == "keyword" and token.text.lower() == word:
            self.next()
            return True
        return False

    def expect_keyword(self, word: str) -> None:
        if not self.accept_keyword(word):
            raise self.error(f"expected {word.upper()}")

    def accept_op(self, op: str) -> bool:
        token = self.peek()
        if token.kind == "op" and token.text == op:
            self.next()
            return True
        return False

    def expect_op(self, op: str) -> None:
        if not self.accept_op(op):
            raise self.error(f"expected {op!r}")

    def expect_ident(self) -> str:
        token = self.peek()
        if token.kind != "ident":
            raise self.error("expected an identifier")
        return self.next().text

    # -- grammar -----------------------------------------------------------

    def parse(self) -> SelectStatement:
        self.expect_keyword("select")
        distinct = self.accept_keyword("distinct")
        items = self._select_list()
        self.expect_keyword("from")
        table = self.expect_ident()
        joins: List[JoinClause] = []
        while self.accept_keyword("join"):
            joins.append(self._join_clause())
        where = None
        if self.accept_keyword("where"):
            where = self._expr()
        group_by: Tuple[str, ...] = ()
        if self.accept_keyword("group"):
            self.expect_keyword("by")
            group_by = self._ident_list()
        having = None
        if self.accept_keyword("having"):
            having = self._expr()
        order_by: List[Tuple[str, bool]] = []
        if self.accept_keyword("order"):
            self.expect_keyword("by")
            order_by = self._order_list()
        limit = None
        if self.accept_keyword("limit"):
            token = self.peek()
            if token.kind != "number" or "." in token.text:
                raise self.error("LIMIT expects an integer")
            limit = int(self.next().text)
        if self.peek().kind != "eof":
            raise self.error("unexpected trailing input")
        return SelectStatement(
            items=tuple(items), table=table, joins=tuple(joins),
            where=where, group_by=group_by, order_by=tuple(order_by),
            limit=limit, distinct=distinct, having=having,
            hints=self.hints)

    def _select_list(self) -> List[SelectItem]:
        items = [self._select_item(0)]
        position = 1
        while self.accept_op(","):
            items.append(self._select_item(position))
            position += 1
        aliases = [i.alias for i in items]
        if len(set(aliases)) != len(aliases):
            raise SqlSyntaxError(
                f"duplicate output column names {aliases}; use AS aliases")
        return items

    def _select_item(self, position: int) -> SelectItem:
        token = self.peek()
        if token.kind == "keyword" and \
                token.text.lower() in ("sum", "count", "avg", "min", "max"):
            func = AggFunc(self.next().text.lower())
            self.expect_op("(")
            if func is AggFunc.COUNT and self.accept_op("*"):
                expr: Optional[Expr] = None
            else:
                expr = self._expr()
            self.expect_op(")")
            alias = self._optional_alias() or self._default_agg_alias(
                func, expr)
            return SelectItem(expr=expr, alias=alias, agg=func)
        expr = self._expr()
        alias = self._optional_alias()
        if alias is None:
            alias = str(expr) if not isinstance(expr, ColumnRef) \
                else expr.name
        return SelectItem(expr=expr, alias=alias)

    @staticmethod
    def _default_agg_alias(func: AggFunc, expr: Optional[Expr]) -> str:
        inner = "star" if expr is None else str(expr)
        safe = re.sub(r"\W+", "_", inner).strip("_")
        return f"{func.value}_{safe}" if safe else func.value

    def _optional_alias(self) -> Optional[str]:
        if self.accept_keyword("as"):
            return self.expect_ident()
        return None

    def _join_clause(self) -> JoinClause:
        table = self.expect_ident()
        self.expect_keyword("on")
        left = self.expect_ident()
        self.expect_op("=")
        right = self.expect_ident()
        return JoinClause(table=table, left_column=left, right_column=right)

    def _ident_list(self) -> Tuple[str, ...]:
        names = [self.expect_ident()]
        while self.accept_op(","):
            names.append(self.expect_ident())
        return tuple(names)

    def _order_list(self) -> List[Tuple[str, bool]]:
        out = [self._order_item()]
        while self.accept_op(","):
            out.append(self._order_item())
        return out

    def _order_item(self) -> Tuple[str, bool]:
        name = self.expect_ident()
        ascending = True
        if self.accept_keyword("desc"):
            ascending = False
        else:
            self.accept_keyword("asc")
        return (name, ascending)

    # -- expressions ---------------------------------------------------

    def _expr(self) -> Expr:
        return self._or_expr()

    def _or_expr(self) -> Expr:
        parts = [self._and_expr()]
        while self.accept_keyword("or"):
            parts.append(self._and_expr())
        return parts[0] if len(parts) == 1 else BoolOp("or", tuple(parts))

    def _and_expr(self) -> Expr:
        parts = [self._not_expr()]
        while self.accept_keyword("and"):
            parts.append(self._not_expr())
        return parts[0] if len(parts) == 1 else BoolOp("and", tuple(parts))

    def _not_expr(self) -> Expr:
        if self.accept_keyword("not"):
            return Not(self._not_expr())
        return self._predicate()

    def _predicate(self) -> Expr:
        left = self._additive()
        token = self.peek()
        if token.kind == "op" and token.text in ("=", "<>", "<", "<=",
                                                 ">", ">="):
            op = self.next().text
            return Comparison(op, left, self._additive())
        if token.kind == "keyword":
            word = token.text.lower()
            if word == "between":
                self.next()
                low = self._additive()
                self.expect_keyword("and")
                return Between(left, low, self._additive())
            if word == "in":
                self.next()
                self.expect_op("(")
                values = [self._literal_value()]
                while self.accept_op(","):
                    values.append(self._literal_value())
                self.expect_op(")")
                return InList(left, tuple(values))
            if word == "like":
                self.next()
                token = self.peek()
                if token.kind != "string":
                    raise self.error("LIKE expects a string pattern")
                return Like(left, self.next().text)
        return left

    def _literal_value(self) -> Any:
        negative = self.accept_op("-")
        token = self.peek()
        if token.kind == "number":
            text = self.next().text
            value = float(text) if "." in text else int(text)
            return -value if negative else value
        if token.kind == "string" and not negative:
            return self.next().text
        raise self.error("expected a literal")

    def _additive(self) -> Expr:
        left = self._multiplicative()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("+", "-"):
                op = self.next().text
                left = Arithmetic(op, left, self._multiplicative())
            else:
                return left

    def _multiplicative(self) -> Expr:
        left = self._primary()
        while True:
            token = self.peek()
            if token.kind == "op" and token.text in ("*", "/"):
                op = self.next().text
                left = Arithmetic(op, left, self._primary())
            else:
                return left

    def _primary(self) -> Expr:
        token = self.peek()
        if token.kind == "number":
            text = self.next().text
            value = float(text) if "." in text else int(text)
            return Literal(value)
        if token.kind == "string":
            return Literal(self.next().text)
        if token.kind == "keyword" and token.text.lower() == "date":
            self.next()
            token = self.peek()
            if token.kind != "string":
                raise self.error("DATE expects a 'YYYY-MM-DD' string")
            try:
                return date_literal(self.next().text)
            except Exception as exc:
                raise SqlSyntaxError(f"bad DATE literal: {exc}") from exc
        if token.kind == "ident":
            return ColumnRef(self.next().text)
        if self.accept_op("("):
            expr = self._expr()
            self.expect_op(")")
            return expr
        if self.accept_op("-"):
            return Arithmetic("-", Literal(0), self._primary())
        raise self.error("expected an expression")


def parse_select(sql: str) -> SelectStatement:
    """Parse one SELECT statement."""
    if not sql or not sql.strip():
        raise SqlSyntaxError("empty SQL text")
    return _Parser(sql).parse()
