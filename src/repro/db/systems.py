"""Multi-backend ``DatabaseSystem`` abstraction (PostBOUND-style).

The paper's "apples and oranges" principle (slides 37-45) demands that a
cross-system comparison run the *same* workload, through the *same*
protocol, with the *same* plan shape on every contender.  That is only
enforceable when the experiment code is written against an interface
rather than one engine, so this module abstracts query execution behind
:class:`DatabaseSystem` — modelled on PostBOUND's ``db.systems`` +
``physops.selection`` split (SNIPPETS.md #2-3) — with three concrete
backends:

- :class:`MiniDBLoopSystem` — the per-row Python executor (the
  differential-testing oracle);
- :class:`MiniDBVectorizedSystem` — the NumPy kernel executor;
- :class:`SQLiteSystem` — stdlib ``sqlite3``, in-process and
  dependency-free: a *real* engine the prototype can be held against.

All three accept the same MiniDB SQL dialect (including ``/*+ ... */``
hints).  :meth:`DatabaseSystem.force_plan` maps one logical join order
onto each backend — MiniDB via ``JOIN_ORDER`` hints, SQLite by
rewriting the joins into ``CROSS JOIN`` form (which pins the join order
in SQLite's planner) with ``PRAGMA automatic_index`` toggled off so no
hidden index changes the shape.  :meth:`DatabaseSystem.explain` is
normalised into a common :class:`SystemPlan` so plan shapes can be
compared across engines, and :meth:`DatabaseSystem.describe_config`
discloses each backend's tuning knobs — the raw material for the
Taipalus pitfall checklist in :mod:`repro.measurement.comparison`.
"""

from __future__ import annotations

import abc
import math
import sqlite3
import time
from dataclasses import dataclass, replace
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.db.engine import Engine, EngineConfig
from repro.db.expressions import (
    Arithmetic,
    Between,
    BoolOp,
    Comparison,
    ColumnRef,
    Expr,
    InList,
    Like,
    Literal,
    Not,
)
from repro.db.parser import (
    SelectStatement,
    hint_comment,
    parse_select,
    strip_explain,
)
from repro.db.storage import Database
from repro.db.types import DataType
from repro.errors import DatabaseError
from repro.measurement.clocks import VirtualClock

#: Float comparison tolerances for cross-system result equivalence.
#: Aggregation order differs between NumPy reductions and SQLite's
#: row-at-a-time accumulators, so SUM/AVG outputs agree only to
#: rounding error — never bit-for-bit.
FLOAT_REL_TOL = 1e-9
FLOAT_ABS_TOL = 1e-9


@dataclass(frozen=True)
class SystemResult:
    """One executed query on one backend, with both time metrics.

    ``wall_s`` is host wall-clock (comparable across every backend);
    ``simulated_s`` is MiniDB's virtual-clock charge (None on backends
    without a simulated timeline, e.g. SQLite).
    """

    system: str
    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Any, ...], ...]
    wall_s: float
    simulated_s: Optional[float] = None

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    def sorted_rows(self) -> Tuple[Tuple[Any, ...], ...]:
        """Rows in a canonical order for cross-system comparison."""
        return tuple(sorted(self.rows, key=_row_sort_key))


@dataclass(frozen=True)
class SystemPlan:
    """A backend's plan, normalised for cross-system shape comparison.

    ``join_order`` is the sequence in which base tables enter the
    pipeline; ``node_kinds`` the normalised operator names top-down.
    ``raw`` keeps the backend's native EXPLAIN text for the report.
    """

    system: str
    join_order: Tuple[str, ...]
    node_kinds: Tuple[str, ...] = ()
    forced: bool = False
    raw: str = ""

    def same_shape(self, other: "SystemPlan") -> bool:
        """Same logical shape: identical base-table join order."""
        return self.join_order == other.join_order


def _row_sort_key(row: Tuple[Any, ...]) -> Tuple[str, ...]:
    # Stringified keys give a total order across mixed int/float/str
    # columns; floats are formatted to 9 significant digits so the
    # last-bit aggregation differences cannot reorder equal rows.
    return tuple(f"{v:.9g}" if isinstance(v, float) else f"{type(v).__name__}:{v}"
                 for v in row)


def _values_match(a: Any, b: Any) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        return math.isclose(float(a), float(b), rel_tol=FLOAT_REL_TOL,
                            abs_tol=FLOAT_ABS_TOL)
    return a == b


def results_match(a: SystemResult, b: SystemResult) -> bool:
    """Row-for-row equivalence of two sorted result sets.

    Column *names* may differ per backend dialect; shape, row count and
    every value (floats to within aggregation rounding) must agree.
    """
    if len(a.columns) != len(b.columns) or a.n_rows != b.n_rows:
        return False
    for row_a, row_b in zip(a.sorted_rows(), b.sorted_rows()):
        if not all(_values_match(x, y) for x, y in zip(row_a, row_b)):
            return False
    return True


class DatabaseSystem(abc.ABC):
    """One engine the comparison harness can drive.

    Lifecycle: :meth:`connect`, :meth:`load` (once per database), then
    any number of :meth:`execute` / :meth:`explain` calls.  Subclasses
    set :attr:`supports_plan_forcing` to False when they cannot pin a
    join order; the harness then *warns* ("plan shapes not comparable")
    instead of crashing.
    """

    name: str = "abstract"
    supports_plan_forcing: bool = True

    def __init__(self) -> None:
        self._fingerprint: Dict[str, int] = {}

    # -- lifecycle -------------------------------------------------------

    @abc.abstractmethod
    def connect(self) -> None:
        """Open the backend (idempotent)."""

    @abc.abstractmethod
    def load(self, database: Database) -> None:
        """Copy *database* into the backend and record its fingerprint."""

    def close(self) -> None:  # pragma: no cover - trivial default
        """Release backend resources (optional)."""

    # -- queries ---------------------------------------------------------

    @abc.abstractmethod
    def execute(self, sql: str) -> SystemResult:
        """Run MiniDB-dialect *sql*, timing it with host wall-clock."""

    @abc.abstractmethod
    def explain(self, sql: str) -> SystemPlan:
        """The backend's plan for *sql*, normalised to a SystemPlan."""

    @abc.abstractmethod
    def statistics(self) -> Dict[str, float]:
        """Backend counters after execution (rows loaded, cache hits...)."""

    @abc.abstractmethod
    def describe_config(self) -> Dict[str, str]:
        """Full tuning disclosure: every knob that shapes performance."""

    # -- plan forcing ----------------------------------------------------

    def force_plan(self, sql: str, join_order: Sequence[str]) -> str:
        """Rewrite *sql* so the backend executes *join_order*.

        Validates eagerly: the order must name exactly the statement's
        tables (fail fast on typos rather than silently comparing
        different plans), and the statement must not already carry a
        conflicting ``JOIN_ORDER`` hint.
        """
        if not self.supports_plan_forcing:
            raise DatabaseError(
                f"system {self.name!r} does not support plan forcing")
        order = tuple(join_order)
        __, stripped = strip_explain(sql)
        statement = parse_select(stripped)
        if statement.hints.join_order:
            raise DatabaseError(
                f"statement already forces a join order "
                f"{statement.hints.join_order}; refusing to re-force")
        tables = set(statement.tables)
        unknown = [t for t in order if t not in tables]
        if unknown:
            raise DatabaseError(
                f"forced join order names unknown table(s) {unknown}; "
                f"statement tables: {sorted(tables)}")
        if set(order) != tables or len(order) != len(statement.tables):
            raise DatabaseError(
                f"forced join order {order} must name each of "
                f"{sorted(tables)} exactly once")
        return self._apply_force(stripped, order)

    def _apply_force(self, sql: str, order: Tuple[str, ...]) -> str:
        """Backend-specific rewrite; default prepends a hint comment."""
        return f"{hint_comment(order)} {sql}"

    # -- comparison support ----------------------------------------------

    def data_fingerprint(self) -> Dict[str, int]:
        """``{table: row_count}`` recorded at load time; the harness
        uses it to verify every system saw identical data."""
        return dict(self._fingerprint)


# ---------------------------------------------------------------------------
# MiniDB adapters
# ---------------------------------------------------------------------------

class MiniDBSystem(DatabaseSystem):
    """Thin adapter over :class:`~repro.db.engine.Engine`.

    Subclasses pin the executor; every other engine knob can be
    overridden through *config*.
    """

    executor = "loop"

    def __init__(self, config: Optional[EngineConfig] = None,
                 label: Optional[str] = None):
        super().__init__()
        base = config if config is not None else EngineConfig()
        if base.executor != self.executor:
            base = replace(base, executor=self.executor)
        self.config = base
        if label is not None:
            # Distinguish two differently-tuned instances of the same
            # backend in one comparison (e.g. tuned vs untuned).
            self.name = label
        self.engine: Optional[Engine] = None

    def connect(self) -> None:
        pass  # in-process: the engine is created at load()

    def load(self, database: Database) -> None:
        self.engine = Engine(database, self.config, clock=VirtualClock())
        self._fingerprint = {name: database.table(name).n_rows
                             for name in database.table_names}

    def _require_engine(self) -> Engine:
        if self.engine is None:
            raise DatabaseError(
                f"system {self.name!r}: load() a database first")
        return self.engine

    def execute(self, sql: str) -> SystemResult:
        engine = self._require_engine()
        start = time.perf_counter()
        result = engine.execute(sql)
        wall = time.perf_counter() - start
        return SystemResult(system=self.name, columns=result.columns,
                            rows=result.rows, wall_s=wall,
                            simulated_s=result.server_time.real)

    def explain(self, sql: str) -> SystemPlan:
        engine = self._require_engine()
        plan = engine.plan(sql)
        order: List[str] = []
        kinds: List[str] = []
        for node in plan.walk():
            kinds.append(type(node).__name__.lower())
            table = getattr(node, "table_name", None)
            if table is not None:
                # Scans appear left-to-right in a left-deep tree's
                # pre-order walk, i.e. in join order.
                order.append(table)
        statement = parse_select(strip_explain(sql)[1])
        return SystemPlan(system=self.name, join_order=tuple(order),
                          node_kinds=tuple(kinds),
                          forced=bool(statement.hints.join_order),
                          raw=plan.explain(None))

    def statistics(self) -> Dict[str, float]:
        return self._require_engine().statistics()

    def describe_config(self) -> Dict[str, str]:
        return self._require_engine().describe_config()

    def make_cold(self) -> None:
        """Flush the buffer pool (cold-stage protocols)."""
        self._require_engine().make_cold()


class MiniDBLoopSystem(MiniDBSystem):
    """MiniDB with the per-row Python executor."""

    name = "minidb-loop"
    executor = "loop"


class MiniDBVectorizedSystem(MiniDBSystem):
    """MiniDB with the NumPy kernel executor."""

    name = "minidb-vectorized"
    executor = "vectorized"


# ---------------------------------------------------------------------------
# SQLite backend
# ---------------------------------------------------------------------------

_SQLITE_TYPES = {
    DataType.INT64: "INTEGER",
    DataType.DATE: "INTEGER",
    DataType.FLOAT64: "REAL",
    DataType.STRING: "TEXT",
}


class _SqliteRenderer:
    """Translate a parsed MiniDB statement into SQLite SQL.

    Column references are qualified (``table.column``) because the
    MiniDB dialect allows bare join keys (``ON ckey = ckey``) that
    SQLite would reject as ambiguous.  ``JOIN_ORDER`` hints become a
    ``CROSS JOIN`` chain — the one join syntax SQLite's planner never
    reorders — with the join predicates moved into WHERE.  Physical
    hints (``JOIN_OP``/``SCAN``/``BUILD``) have no SQLite equivalent
    and fail fast rather than silently running a different plan.
    """

    def __init__(self, statement: SelectStatement, database: Database):
        self.statement = statement
        self.database = database
        self.tables = statement.tables
        hints = statement.hints
        if hints.join_ops or hints.scans or hints.build_sides:
            raise DatabaseError(
                "SQLite backend cannot honour physical-operator hints "
                "(JOIN_OP/SCAN/BUILD); only JOIN_ORDER is supported")
        if hints.join_order and set(hints.join_order) != set(self.tables):
            raise DatabaseError(
                f"JOIN_ORDER {hints.join_order} must cover the "
                f"statement tables {sorted(set(self.tables))}")

    # -- name resolution -------------------------------------------------

    def _qualify(self, column: str) -> str:
        owner, __ = self.database.resolve_column(column, self.tables)
        return f"{owner}.{column}"

    def _join_predicates(self) -> List[str]:
        preds = []
        available = [self.statement.table]
        for join in self.statement.joins:
            left, right = self._orient_join(join, available)
            preds.append(f"{left} = {right}")
            available.append(join.table)
        return preds

    def _orient_join(self, join, available: Sequence[str]
                     ) -> Tuple[str, str]:
        """Qualified (prior-table column, new-table column), mirroring
        the MiniDB optimizer's orientation rules."""
        new = join.table
        a, b = join.left_column, join.right_column

        def owners(col: str) -> List[str]:
            return [t for t in available
                    if self.database.table(t).has_column(col)]

        def in_new(col: str) -> bool:
            return self.database.table(new).has_column(col)

        if a == b:
            prior = owners(a)
            if len(prior) != 1 or not in_new(a):
                raise DatabaseError(
                    f"cannot orient join key {a!r} between {new!r} "
                    f"and {list(available)}")
            return f"{prior[0]}.{a}", f"{new}.{a}"
        for left_col, right_col in ((a, b), (b, a)):
            prior = owners(left_col)
            if len(prior) == 1 and in_new(right_col):
                return f"{prior[0]}.{left_col}", f"{new}.{right_col}"
        raise DatabaseError(
            f"cannot orient join {a} = {b} adding table {new!r}")

    # -- expressions -----------------------------------------------------

    def render_expr(self, expr: Expr) -> str:
        if isinstance(expr, ColumnRef):
            return self._qualify(expr.name)
        if isinstance(expr, Literal):
            if isinstance(expr.value, str):
                escaped = expr.value.replace("'", "''")
                return f"'{escaped}'"
            return str(expr.value)
        if isinstance(expr, Arithmetic):
            left = self.render_expr(expr.left)
            right = self.render_expr(expr.right)
            if expr.op == "/":
                # MiniDB divides through np.divide (always true
                # division); SQLite's "/" truncates on integers.
                return f"(CAST({left} AS REAL) / {right})"
            return f"({left} {expr.op} {right})"
        if isinstance(expr, Comparison):
            return (f"({self.render_expr(expr.left)} {expr.op} "
                    f"{self.render_expr(expr.right)})")
        if isinstance(expr, BoolOp):
            joiner = f" {expr.op.upper()} "
            return "(" + joiner.join(self.render_expr(p)
                                     for p in expr.parts) + ")"
        if isinstance(expr, Not):
            return f"(NOT {self.render_expr(expr.expr)})"
        if isinstance(expr, Between):
            return (f"({self.render_expr(expr.expr)} BETWEEN "
                    f"{self.render_expr(expr.low)} AND "
                    f"{self.render_expr(expr.high)})")
        if isinstance(expr, InList):
            values = ", ".join(
                "'" + v.replace("'", "''") + "'" if isinstance(v, str)
                else str(v) for v in expr.values)
            return f"({self.render_expr(expr.expr)} IN ({values}))"
        if isinstance(expr, Like):
            return (f"({self.render_expr(expr.expr)} LIKE "
                    f"'{expr.pattern}')")
        raise DatabaseError(
            f"cannot translate expression {expr!r} to SQLite")

    # -- statement -------------------------------------------------------

    def _select_list(self) -> str:
        parts = []
        for item in self.statement.items:
            if item.agg is not None:
                inner = "*" if item.expr is None \
                    else self.render_expr(item.expr)
                rendered = f"{item.agg.value.upper()}({inner})"
            else:
                rendered = self.render_expr(item.expr)
            parts.append(f'{rendered} AS "{item.alias}"')
        return ", ".join(parts)

    def _from_clause(self) -> Tuple[str, List[str]]:
        """(FROM text, predicates that must move into WHERE)."""
        order = self.statement.hints.join_order
        if not order:
            text = self.statement.table
            available = [self.statement.table]
            for join in self.statement.joins:
                left, right = self._orient_join(join, available)
                text += f" JOIN {join.table} ON {left} = {right}"
                available.append(join.table)
            return text, []
        # Forced order: CROSS JOIN pins SQLite's join order; every join
        # predicate becomes a WHERE conjunct.
        return " CROSS JOIN ".join(order), self._join_predicates()

    def render(self) -> str:
        s = self.statement
        from_text, extra_preds = self._from_clause()
        head = "SELECT DISTINCT" if s.distinct else "SELECT"
        sql = f"{head} {self._select_list()} FROM {from_text}"
        conjuncts = list(extra_preds)
        if s.where is not None:
            conjuncts.append(self.render_expr(s.where))
        if conjuncts:
            sql += " WHERE " + " AND ".join(conjuncts)
        if s.group_by:
            sql += " GROUP BY " + ", ".join(self._qualify(c)
                                            for c in s.group_by)
        if s.having is not None:
            # HAVING operates over output aliases in the MiniDB
            # dialect; SQLite resolves bare aliases there too.
            sql += " HAVING " + self._render_alias_expr(s.having)
        if s.order_by:
            rendered = []
            aliases = {item.alias for item in s.items}
            for column, ascending in s.order_by:
                name = f'"{column}"' if column in aliases \
                    else self._qualify(column)
                rendered.append(name + ("" if ascending else " DESC"))
            sql += " ORDER BY " + ", ".join(rendered)
        if s.limit is not None:
            sql += f" LIMIT {s.limit}"
        return sql

    def _render_alias_expr(self, expr: Expr) -> str:
        """Render a HAVING expression whose columns are output aliases."""
        if isinstance(expr, ColumnRef):
            return f'"{expr.name}"'
        if isinstance(expr, Comparison):
            return (f"({self._render_alias_expr(expr.left)} {expr.op} "
                    f"{self._render_alias_expr(expr.right)})")
        if isinstance(expr, BoolOp):
            joiner = f" {expr.op.upper()} "
            return "(" + joiner.join(self._render_alias_expr(p)
                                     for p in expr.parts) + ")"
        if isinstance(expr, Not):
            return f"(NOT {self._render_alias_expr(expr.expr)})"
        return self.render_expr(expr)


class SQLiteSystem(DatabaseSystem):
    """In-process SQLite over an in-memory copy of a MiniDB database.

    Accepts the MiniDB dialect: statements are parsed with the MiniDB
    parser and re-rendered into SQLite SQL (qualified columns, CROSS
    JOIN plan forcing, true division).  ``EXPLAIN QUERY PLAN`` output
    is normalised into :class:`SystemPlan`.
    """

    name = "sqlite"

    def __init__(self, cache_pages: int = 2000):
        super().__init__()
        self.cache_pages = cache_pages
        self.conn: Optional[sqlite3.Connection] = None
        self.database: Optional[Database] = None
        self._rows_loaded = 0
        self._statements = 0

    def connect(self) -> None:
        if self.conn is None:
            self.conn = sqlite3.connect(":memory:")
            self.conn.execute(f"PRAGMA cache_size = {self.cache_pages}")

    def close(self) -> None:
        if self.conn is not None:
            self.conn.close()
            self.conn = None

    def load(self, database: Database) -> None:
        self.connect()
        assert self.conn is not None
        self.database = database
        self._rows_loaded = 0
        for name in database.table_names:
            table = database.table(name)
            decls = ", ".join(
                f"{c.name} {_SQLITE_TYPES[c.dtype]}"
                for c in (table.column(n) for n in table.column_names))
            self.conn.execute(f"DROP TABLE IF EXISTS {name}")
            self.conn.execute(f"CREATE TABLE {name} ({decls})")
            arrays = [table.column(n).data.tolist()
                      for n in table.column_names]
            placeholders = ", ".join("?" for __ in arrays)
            self.conn.executemany(
                f"INSERT INTO {name} VALUES ({placeholders})",
                zip(*arrays))
            self._rows_loaded += table.n_rows
        self.conn.commit()
        self._fingerprint = {name: database.table(name).n_rows
                             for name in database.table_names}

    def _require_conn(self) -> sqlite3.Connection:
        if self.conn is None or self.database is None:
            raise DatabaseError(
                f"system {self.name!r}: load() a database first")
        return self.conn

    def translate(self, sql: str) -> str:
        """The SQLite rendering of MiniDB-dialect *sql*."""
        if self.database is None:
            raise DatabaseError(
                f"system {self.name!r}: load() a database first")
        __, stripped = strip_explain(sql)
        statement = parse_select(stripped)
        return _SqliteRenderer(statement, self.database).render()

    def _prepare(self, sql: str) -> Tuple[str, bool]:
        __, stripped = strip_explain(sql)
        statement = parse_select(stripped)
        forced = bool(statement.hints.join_order)
        conn = self._require_conn()
        # Plan forcing also pins the access paths: automatic (one-shot)
        # indexes would change the plan shape mid-comparison.
        conn.execute("PRAGMA automatic_index = %s"
                     % ("OFF" if forced else "ON"))
        assert self.database is not None
        return _SqliteRenderer(statement, self.database).render(), forced

    def execute(self, sql: str) -> SystemResult:
        conn = self._require_conn()
        translated, __ = self._prepare(sql)
        start = time.perf_counter()
        cursor = conn.execute(translated)
        rows = cursor.fetchall()
        wall = time.perf_counter() - start
        self._statements += 1
        columns = tuple(d[0] for d in cursor.description)
        return SystemResult(system=self.name, columns=columns,
                            rows=tuple(tuple(r) for r in rows),
                            wall_s=wall, simulated_s=None)

    def explain(self, sql: str) -> SystemPlan:
        conn = self._require_conn()
        translated, forced = self._prepare(sql)
        detail_rows = conn.execute(
            "EXPLAIN QUERY PLAN " + translated).fetchall()
        details = [str(row[-1]) for row in detail_rows]
        order: List[str] = []
        kinds: List[str] = []
        known = set(self.database.table_names) \
            if self.database is not None else set()
        for detail in details:
            words = detail.split()
            if words and words[0] in ("SCAN", "SEARCH"):
                kinds.append(words[0].lower())
                table = words[1] if len(words) > 1 else ""
                if table in known:
                    order.append(table)
            else:
                kinds.append(detail.split()[0].lower() if words else "")
        return SystemPlan(system=self.name, join_order=tuple(order),
                          node_kinds=tuple(kinds), forced=forced,
                          raw="\n".join(details))

    def statistics(self) -> Dict[str, float]:
        return {
            "rows_loaded": float(self._rows_loaded),
            "tables": float(len(self._fingerprint)),
            "statements_executed": float(self._statements),
        }

    def describe_config(self) -> Dict[str, str]:
        conn = self._require_conn()

        def pragma(name: str) -> str:
            return str(conn.execute(f"PRAGMA {name}").fetchone()[0])

        return {
            "backend": "sqlite " + sqlite3.sqlite_version,
            "storage": ":memory:",
            "cache_size_pages": pragma("cache_size"),
            "journal_mode": pragma("journal_mode"),
            "automatic_index": pragma("automatic_index"),
        }

    def _apply_force(self, sql: str, order: Tuple[str, ...]) -> str:
        # The hint survives translation: _prepare() sees join_order and
        # renders the CROSS JOIN chain + pragma toggle.
        return f"{hint_comment(order)} {sql}"


#: The standard three-way contender list for cross-system studies.
def default_systems() -> Tuple[DatabaseSystem, ...]:
    """Fresh instances of the three built-in backends."""
    return (MiniDBLoopSystem(), MiniDBVectorizedSystem(), SQLiteSystem())
