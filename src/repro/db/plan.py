"""Plan nodes: the common shape of MiniDB physical operators.

A plan is a tree of :class:`PlanNode`.  Executing a node returns a
*batch* (column-name → numpy array).  Nodes record execution statistics
(rows produced, self time) used by EXPLAIN/TRACE/PROFILE — the
introspection surface the tutorial recommends exploiting (slides 28, 52).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.context import ExecutionContext
from repro.db.kernels import SelBatch
from repro.db.types import DataType
from repro.errors import PlanError
from repro.obs import maybe_span

Batch = Dict[str, np.ndarray]


def batch_rows(batch: Batch) -> int:
    """Row count of a batch (0 for an empty mapping).

    A :class:`~repro.db.kernels.SelBatch` counts its *selected* rows —
    the logical row count the pipeline sees, not the base size.
    """
    if isinstance(batch, SelBatch):
        return batch.rows()
    for arr in batch.values():
        return len(arr)
    return 0


def batch_bytes(batch: Batch) -> int:
    """Approximate bytes a batch occupies (strings estimated at 16B).

    A :class:`~repro.db.kernels.SelBatch` is charged for its selected
    payload plus the selection vector — deferred materialisation is
    exactly what keeps this number small for selective filters.
    """
    if isinstance(batch, SelBatch):
        return batch.bytes_used()
    total = 0
    for arr in batch.values():
        if arr.dtype == object:
            total += len(arr) * 16
        else:
            total += int(arr.nbytes)
    return total


#: Ceiling for sanitised cardinality/cost estimates: large enough to
#: order any real plan, finite so EXPLAIN never prints ``inf``.
EST_CAP = 1e15


def sanitize_estimate(value: float, fallback: float = 0.0) -> float:
    """Clamp a cardinality/cost estimate to a finite, non-negative float.

    Estimate arithmetic (selectivity products, ``n*log(n)``, square
    roots) can produce NaN or infinities on degenerate inputs; those
    must never reach EXPLAIN output or cost comparisons, where NaN
    poisons every ``min()``.  NaN maps to *fallback*, ``+inf`` to the
    finite :data:`EST_CAP`, and anything negative to 0.
    """
    value = float(value)
    if value != value:  # NaN
        return float(fallback)
    if value == float("inf"):
        return EST_CAP
    if value < 0.0:  # includes -inf
        return 0.0
    return min(value, EST_CAP)


class PlanNode:
    """Base physical operator."""

    #: Build-model category this operator's CPU work belongs to.
    category = "scan"

    def __init__(self, children: Sequence["PlanNode"] = ()):
        self.children: Tuple["PlanNode", ...] = tuple(children)
        #: Optimizer annotations: the cost-based planner stamps its
        #: cardinality estimate and cumulative subtree cost (ns) here;
        #: EXPLAIN prefers these over the heuristic estimate.
        self.est_rows: Optional[float] = None
        self.est_cost_ns: Optional[float] = None
        # Statistics filled in by execute():
        self.rows_out: Optional[int] = None
        self.self_seconds: float = 0.0
        self.total_seconds: float = 0.0
        #: Actuals recorded by execute() for EXPLAIN ANALYZE
        #: (:mod:`repro.db.actuals`): input batches consumed, the
        #: buffer-pool hits/misses this operator's own ``_run`` caused
        #: (children record their own), and the cardinality estimate
        #: frozen at execution time so est-vs-actual comparisons use
        #: exactly what the planner believed.
        self.batches: int = 0
        self.buffer_hits: int = 0
        self.buffer_misses: int = 0
        self.last_est_rows: Optional[float] = None
        #: Bytes of auxiliary structures (hash tables, sort buffers)
        #: the operator held while running; set by _run.
        self.aux_bytes: int = 0
        #: Extra attributes _run may record for the operator's span and
        #: EXPLAIN line (e.g. ``build_side``, ``kernel``); reset per run.
        self.span_extras: Dict[str, object] = {}

    # -- static interface -------------------------------------------------

    def name(self) -> str:
        """Operator name with its key arguments, for EXPLAIN."""
        raise NotImplementedError

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        """Output columns and their types."""
        raise NotImplementedError

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        """Optimizer cardinality estimate."""
        raise NotImplementedError

    def estimated_rows_safe(self, ctx: ExecutionContext) -> float:
        """The cardinality estimate, guaranteed finite and >= 0.

        Prefers the cost-based planner's :attr:`est_rows` annotation;
        falls back to the heuristic :meth:`estimated_rows`, sanitised
        so NaN/inf can never leak into EXPLAIN or cost comparisons.
        """
        if self.est_rows is not None:
            return sanitize_estimate(self.est_rows)
        return sanitize_estimate(self.estimated_rows(ctx))

    # -- execution ---------------------------------------------------------

    def execute(self, ctx: ExecutionContext) -> Batch:
        """Run the subtree, recording timing and memory statistics."""
        with maybe_span(self.name(), "operator",
                        kind=type(self).__name__) as span:
            start = ctx.now()
            child_batches = [child.execute(ctx)
                             for child in self.children]
            children_seconds = sum(c.total_seconds
                                   for c in self.children)
            self.span_extras = {}
            pool = ctx.buffer_pool
            hits_before = pool.hits if pool is not None else 0
            misses_before = pool.misses if pool is not None else 0
            batch = self._run(ctx, child_batches)
            end = ctx.now()
            self.total_seconds = end - start
            self.self_seconds = self.total_seconds - children_seconds
            self.rows_out = batch_rows(batch)
            # Children ran before _run started, so these deltas are
            # exclusively this operator's own buffer traffic.
            if pool is not None:
                self.buffer_hits = pool.hits - hits_before
                self.buffer_misses = pool.misses - misses_before
            # This engine materialises fully: one batch per child, one
            # produced; leaves consume their table as a single batch.
            self.batches = max(1, len(child_batches))
            self.last_est_rows = self.estimated_rows_safe(ctx)
            # Peak working set at this node: inputs + output + auxiliaries.
            inputs = sum(batch_bytes(b) for b in child_batches)
            ctx.track_memory(inputs + batch_bytes(batch) + self.aux_bytes)
            if span is not None:
                span.set(rows=self.rows_out,
                         self_ms=self.self_seconds * 1000.0,
                         est_rows=self.last_est_rows,
                         batches=self.batches,
                         buffer_hits=self.buffer_hits,
                         buffer_misses=self.buffer_misses)
                if self.span_extras:
                    span.set(**self.span_extras)
            return batch

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        raise NotImplementedError

    # -- reporting ---------------------------------------------------------

    def walk(self):
        """Yield every node, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def explain_extras(self, ctx: Optional[ExecutionContext]
                       ) -> List[str]:
        """Extra EXPLAIN annotations (e.g. kernel choice, build side)."""
        return []

    def explain(self, ctx: Optional[ExecutionContext] = None,
                indent: int = 0) -> str:
        """EXPLAIN-style tree rendering; includes estimates when a
        context is given and actuals after execution."""
        parts = [self.name()]
        if ctx is not None:
            parts.append(f"est_rows={self.estimated_rows_safe(ctx):.0f}")
        if self.est_cost_ns is not None:
            cost_ms = sanitize_estimate(self.est_cost_ns) / 1e6
            parts.append(f"est_cost={cost_ms:.3f}ms")
        parts.extend(self.explain_extras(ctx))
        if self.rows_out is not None:
            parts.append(f"rows={self.rows_out}")
            parts.append(f"self={self.self_seconds * 1000:.3f}ms")
        line = "  " * indent + "-> " + "  ".join(parts)
        lines = [line]
        for child in self.children:
            lines.append(child.explain(ctx, indent + 1))
        return "\n".join(lines)


def require_columns(batch: Batch, names: Sequence[str],
                    where: str) -> None:
    """Raise :class:`PlanError` unless the batch provides *names*."""
    missing = [n for n in names if n not in batch]
    if missing:
        raise PlanError(f"{where}: missing columns {missing}; "
                        f"batch has {sorted(batch)}")
