"""Plan nodes: the common shape of MiniDB physical operators.

A plan is a tree of :class:`PlanNode`.  Executing a node returns a
*batch* (column-name → numpy array).  Nodes record execution statistics
(rows produced, self time) used by EXPLAIN/TRACE/PROFILE — the
introspection surface the tutorial recommends exploiting (slides 28, 52).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.context import ExecutionContext
from repro.db.kernels import SelBatch
from repro.db.types import DataType
from repro.errors import PlanError
from repro.obs import maybe_span

Batch = Dict[str, np.ndarray]


def batch_rows(batch: Batch) -> int:
    """Row count of a batch (0 for an empty mapping).

    A :class:`~repro.db.kernels.SelBatch` counts its *selected* rows —
    the logical row count the pipeline sees, not the base size.
    """
    if isinstance(batch, SelBatch):
        return batch.rows()
    for arr in batch.values():
        return len(arr)
    return 0


def batch_bytes(batch: Batch) -> int:
    """Approximate bytes a batch occupies (strings estimated at 16B).

    A :class:`~repro.db.kernels.SelBatch` is charged for its selected
    payload plus the selection vector — deferred materialisation is
    exactly what keeps this number small for selective filters.
    """
    if isinstance(batch, SelBatch):
        return batch.bytes_used()
    total = 0
    for arr in batch.values():
        if arr.dtype == object:
            total += len(arr) * 16
        else:
            total += int(arr.nbytes)
    return total


class PlanNode:
    """Base physical operator."""

    #: Build-model category this operator's CPU work belongs to.
    category = "scan"

    def __init__(self, children: Sequence["PlanNode"] = ()):
        self.children: Tuple["PlanNode", ...] = tuple(children)
        # Statistics filled in by execute():
        self.rows_out: Optional[int] = None
        self.self_seconds: float = 0.0
        self.total_seconds: float = 0.0
        #: Bytes of auxiliary structures (hash tables, sort buffers)
        #: the operator held while running; set by _run.
        self.aux_bytes: int = 0
        #: Extra attributes _run may record for the operator's span and
        #: EXPLAIN line (e.g. ``build_side``, ``kernel``); reset per run.
        self.span_extras: Dict[str, object] = {}

    # -- static interface -------------------------------------------------

    def name(self) -> str:
        """Operator name with its key arguments, for EXPLAIN."""
        raise NotImplementedError

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        """Output columns and their types."""
        raise NotImplementedError

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        """Optimizer cardinality estimate."""
        raise NotImplementedError

    # -- execution ---------------------------------------------------------

    def execute(self, ctx: ExecutionContext) -> Batch:
        """Run the subtree, recording timing and memory statistics."""
        with maybe_span(self.name(), "operator",
                        kind=type(self).__name__) as span:
            start = ctx.now()
            child_batches = [child.execute(ctx)
                             for child in self.children]
            children_seconds = sum(c.total_seconds
                                   for c in self.children)
            self.span_extras = {}
            batch = self._run(ctx, child_batches)
            end = ctx.now()
            self.total_seconds = end - start
            self.self_seconds = self.total_seconds - children_seconds
            self.rows_out = batch_rows(batch)
            # Peak working set at this node: inputs + output + auxiliaries.
            inputs = sum(batch_bytes(b) for b in child_batches)
            ctx.track_memory(inputs + batch_bytes(batch) + self.aux_bytes)
            if span is not None:
                span.set(rows=self.rows_out,
                         self_ms=self.self_seconds * 1000.0)
                if self.span_extras:
                    span.set(**self.span_extras)
            return batch

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        raise NotImplementedError

    # -- reporting ---------------------------------------------------------

    def walk(self):
        """Yield every node, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def explain_extras(self, ctx: Optional[ExecutionContext]
                       ) -> List[str]:
        """Extra EXPLAIN annotations (e.g. kernel choice, build side)."""
        return []

    def explain(self, ctx: Optional[ExecutionContext] = None,
                indent: int = 0) -> str:
        """EXPLAIN-style tree rendering; includes estimates when a
        context is given and actuals after execution."""
        parts = [self.name()]
        if ctx is not None:
            parts.append(f"est_rows={self.estimated_rows(ctx):.0f}")
        parts.extend(self.explain_extras(ctx))
        if self.rows_out is not None:
            parts.append(f"rows={self.rows_out}")
            parts.append(f"self={self.self_seconds * 1000:.3f}ms")
        line = "  " * indent + "-> " + "  ".join(parts)
        lines = [line]
        for child in self.children:
            lines.append(child.explain(ctx, indent + 1))
        return "\n".join(lines)


def require_columns(batch: Batch, names: Sequence[str],
                    where: str) -> None:
    """Raise :class:`PlanError` unless the batch provides *names*."""
    missing = [n for n in names if n not in batch]
    if missing:
        raise PlanError(f"{where}: missing columns {missing}; "
                        f"batch has {sorted(batch)}")
