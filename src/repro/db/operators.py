"""MiniDB physical operators.

Every operator performs real computation on numpy column batches *and*
charges simulated cost to the execution context:

- CPU nanoseconds per value/row, routed through the DBG/OPT build model;
- per-tuple interpretation overhead when the engine runs in TUPLE
  (Volcano) mode;
- I/O through the buffer pool (scans only).

This dual nature is what lets the benchmark suite reproduce the
tutorial's timing tables deterministically while tests validate results
against plain-numpy oracles.
"""

from __future__ import annotations

import enum
import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db import kernels
from repro.db.context import ExecutionContext
from repro.db.expressions import Expr
from repro.db.plan import Batch, PlanNode, batch_rows, require_columns
from repro.db.types import DataType
from repro.errors import PlanError


def _vectorized(ctx) -> bool:
    """True when the context selects the kernel-based executor.

    ``getattr`` keeps internal delegating contexts (e.g. the nested-loop
    join's null-cost wrapper) transparent.
    """
    return getattr(ctx, "executor", "loop") == "vectorized"


def _kernel_extras(ctx) -> List[str]:
    """The ``kernel=`` EXPLAIN annotation for vectorizable operators."""
    if ctx is None:
        return []
    return [f"kernel={'vectorized' if _vectorized(ctx) else 'loop'}"]


def _predicate_view(batch, columns: Sequence[str], n: int,
                    ctx) -> Batch:
    """The columns an expression needs, gathered if *batch* carries a
    selection vector.  Expressions over no columns (pure literals) get
    a carrier column so their result still has *n* rows."""
    base, sel = kernels.split_batch(batch)
    if not columns:
        return {"__rows__": np.zeros(n, dtype=np.int8)}
    if sel is None:
        return base
    kernels.charge_gather(ctx, n, len(columns))
    return kernels.gather(base, sel, list(columns))


class SeqScan(PlanNode):
    """Sequential scan of a base table through the buffer pool.

    When the planner pushes a filter down onto the scan
    (:attr:`prune_for`), the scan consults the table's zone maps first
    and skips every block the predicate can never match — the pruned
    blocks' I/O and scan CPU are never charged, and in the vectorized
    engine the surviving rows travel as a selection vector so non-filter
    columns materialise late.  Dictionary-encoded columns read their
    (smaller) code + dictionary footprint instead of raw values.
    """

    category = "scan"

    def __init__(self, table_name: str,
                 columns: Optional[Sequence[str]] = None):
        super().__init__()
        self.table_name = table_name
        self.columns = tuple(columns) if columns is not None else None
        #: Predicate of the Filter directly above (set by the planner on
        #: pushdown); drives zone-map block pruning.
        self.prune_for: Optional[Expr] = None
        #: Per-block verdicts of the last execution (the Filter above
        #: reads them to short-circuit all-true/all-false inputs).
        self.last_block_verdicts = None

    def name(self) -> str:
        cols = ", ".join(self.columns) if self.columns else "*"
        return f"SeqScan({self.table_name}: {cols})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        table = ctx.database.table(self.table_name)
        names = self.columns if self.columns is not None \
            else table.column_names
        return {n: table.column(n).dtype for n in names}

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        return float(ctx.database.table(self.table_name).n_rows)

    def _verdicts(self, ctx, table):
        """Zone-map verdicts for the pushed-down predicate (or None)."""
        if self.prune_for is None or not getattr(ctx, "zone_maps", True):
            return None
        from repro.db import zonemaps
        return zonemaps.block_verdicts(table, self.prune_for)

    def explain_extras(self, ctx) -> List[str]:
        if ctx is None:
            return []
        extras: List[str] = []
        table = ctx.database.table(self.table_name)
        names = self.columns if self.columns is not None \
            else table.column_names
        n_dict = sum(1 for name in names
                     if table.column(name).dictionary is not None)
        if n_dict:
            extras.append(f"dict={n_dict}/{len(names)}")
        verdicts = self._verdicts(ctx, table)
        if verdicts is not None:
            from repro.db.zonemaps import PRUNE_NONE
            pruned = int((verdicts == PRUNE_NONE).sum())
            extras.append(f"blocks pruned={pruned}/{len(verdicts)}")
        return extras

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        table = ctx.database.table(self.table_name)
        names = self.columns if self.columns is not None \
            else table.column_names
        n = table.n_rows
        survivors = None
        verdicts = self._verdicts(ctx, table)
        self.last_block_verdicts = verdicts
        n_dict = sum(1 for name in names
                     if table.column(name).dictionary is not None)
        if n_dict:
            self.span_extras["dict_columns"] = n_dict
        if verdicts is not None:
            from repro.db import zonemaps
            pruned = int((verdicts == zonemaps.PRUNE_NONE).sum())
            self.span_extras["blocks"] = len(verdicts)
            self.span_extras["blocks_pruned"] = pruned
            survivors = zonemaps.surviving_rows(table, verdicts)
        # I/O: only the referenced columns travel through the pool
        # (column store!), which is why narrow scans run hot sooner.
        # Dictionary-encoded columns ship codes + dictionary; pruned
        # blocks are skipped before they are ever read.
        read_bytes = sum(table.column(name).stored_bytes
                         for name in names)
        n_scanned = n if survivors is None else len(survivors)
        if survivors is not None and n:
            read_bytes = int(round(read_bytes * n_scanned / n))
        ctx.buffer_pool.read_table(self.table_name, read_bytes)
        ctx.charge_cpu("scan",
                       ctx.costs.scan_ns_per_value * n_scanned * len(names))
        ctx.charge_tuples(n_scanned)
        base = {name: table.column(name).data for name in names}
        if survivors is None:
            return base
        if _vectorized(ctx) and getattr(ctx, "selection_vectors", False):
            # Late materialization: survivors ride as a selection vector
            # until a pipeline breaker gathers the payload columns.
            return kernels.SelBatch(base, survivors)
        return {name: arr[survivors] for name, arr in base.items()}


class Filter(PlanNode):
    """Row selection by a boolean predicate."""

    def __init__(self, child: PlanNode, predicate: Expr):
        super().__init__([child])
        self.predicate = predicate

    @property
    def category(self) -> str:  # type: ignore[override]
        return self.predicate.cost_category()

    def name(self) -> str:
        return f"Filter({self.predicate})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        return self.children[0].schema(ctx)

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        from repro.db.expressions import estimate_selectivity
        return self.children[0].estimated_rows(ctx) * \
            estimate_selectivity(self.predicate)

    def explain_extras(self, ctx) -> List[str]:
        return _kernel_extras(ctx)

    def _zone_shortcircuit(self) -> Optional[str]:
        """Zone-map proof about the child scan's surviving blocks.

        Returns ``"all"`` when every surviving block is proven all-true
        (the predicate need not run at all), ``"none"`` when every block
        was pruned (the input is already empty), and None when the rows
        must be evaluated normally.
        """
        child = self.children[0]
        if not isinstance(child, SeqScan) or \
                child.prune_for is not self.predicate:
            return None
        verdicts = child.last_block_verdicts
        if verdicts is None:
            return None
        from repro.db import zonemaps
        surviving = verdicts[verdicts != zonemaps.PRUNE_NONE]
        if len(surviving) == 0:
            return "none"
        if bool((surviving == zonemaps.PRUNE_ALL).all()):
            return "all"
        return None

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        batch = child_batches[0]
        needed = sorted(self.predicate.columns())
        require_columns(batch, needed, self.name())
        n = batch_rows(batch)
        if _vectorized(ctx):
            return self._run_vectorized(ctx, batch, needed, n)
        ctx.charge_cpu(self.category,
                       ctx.costs.filter_ns_per_value * n
                       * self.predicate.node_count())
        ctx.charge_tuples(n)
        proof = self._zone_shortcircuit()
        if proof is not None:
            # Zone maps already decided every surviving row ("all") or
            # pruned every block ("none" — the batch is empty): skip the
            # per-row predicate evaluation entirely.
            self.span_extras["zone"] = proof
            return batch
        mask = np.asarray(self.predicate.evaluate(batch), dtype=bool)
        if n and bool(mask.all()):
            # All rows survive: the input batch is already the answer
            # (tuple costs above were charged on all n rows either way).
            return batch
        return {name: arr[mask] for name, arr in batch.items()}

    def _run_vectorized(self, ctx: ExecutionContext, batch,
                        needed: Sequence[str], n: int) -> Batch:
        costs = ctx.costs
        ctx.charge_cpu(self.category,
                       costs.kernel_launch_ns
                       + costs.vector_filter_ns_per_value * n
                       * self.predicate.node_count())
        ctx.charge_tuples(n)
        self.span_extras["kernel"] = "filter.vector"
        proof = self._zone_shortcircuit()
        if proof is not None:
            # Same short-circuit as the loop path: no predicate compile,
            # no evaluation, when zone maps proved the outcome.
            self.span_extras["zone"] = proof
            return batch
        view = _predicate_view(batch, needed, n, ctx)
        mask = np.asarray(kernels.compile_expr(self.predicate)(view),
                          dtype=bool)
        if n and bool(mask.all()):
            return batch
        base, sel = kernels.split_batch(batch)
        new_sel = np.flatnonzero(mask) if sel is None else sel[mask]
        if getattr(ctx, "selection_vectors", False):
            return kernels.SelBatch(base, new_sel)
        kernels.charge_gather(ctx, int(new_sel.size), len(base))
        return kernels.gather(base, new_sel)


class Project(PlanNode):
    """Expression projection with aliases."""

    def __init__(self, child: PlanNode,
                 items: Sequence[Tuple[Expr, str]]):
        super().__init__([child])
        if not items:
            raise PlanError("projection needs at least one item")
        aliases = [alias for __, alias in items]
        if len(set(aliases)) != len(aliases):
            raise PlanError(f"duplicate output names in projection {aliases}")
        self.items = tuple(items)

    category = "arithmetic"

    def name(self) -> str:
        rendered = ", ".join(f"{expr} AS {alias}" if str(expr) != alias
                             else alias for expr, alias in self.items)
        return f"Project({rendered})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        child_schema = self.children[0].schema(ctx)
        return {alias: expr.dtype(child_schema)
                for expr, alias in self.items}

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        return self.children[0].estimated_rows(ctx)

    def explain_extras(self, ctx) -> List[str]:
        return _kernel_extras(ctx)

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        batch = child_batches[0]
        n = batch_rows(batch)
        if _vectorized(ctx):
            return self._run_vectorized(ctx, batch, n)
        out: Batch = {}
        for expr, alias in self.items:
            ctx.charge_cpu(expr.cost_category(),
                           ctx.costs.project_ns_per_value * n
                           * expr.node_count())
            out[alias] = np.asarray(expr.evaluate(batch))
        ctx.charge_tuples(n)
        return out

    def _run_vectorized(self, ctx: ExecutionContext, batch,
                        n: int) -> Batch:
        # Projection is a gather point: referenced columns materialise
        # here, computed outputs are fresh arrays either way.
        costs = ctx.costs
        referenced = sorted(set().union(
            *(expr.columns() for expr, __ in self.items)))
        view = _predicate_view(batch, referenced, n, ctx)
        ctx.charge_cpu("arithmetic", costs.kernel_launch_ns)
        out: Batch = {}
        for expr, alias in self.items:
            ctx.charge_cpu(expr.cost_category(),
                           costs.vector_project_ns_per_value * n
                           * expr.node_count())
            out[alias] = np.asarray(kernels.compile_expr(expr)(view))
        ctx.charge_tuples(n)
        self.span_extras["kernel"] = "project.vector"
        return out


class HashJoin(PlanNode):
    """Inner equi-join: build on the right child, probe with the left."""

    category = "hash"

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_keys: Sequence[str], right_keys: Sequence[str]):
        super().__init__([left, right])
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError(
                "join needs equally many (>=1) keys on both sides")
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)
        #: Optional physical-operator-selection override (plan hints /
        #: cost-based build-side choice); None keeps the estimate rule.
        self.forced_build_side: Optional[str] = None

    def name(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in
                          zip(self.left_keys, self.right_keys))
        return f"HashJoin({pairs})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        left = self.children[0].schema(ctx)
        right = self.children[1].schema(ctx)
        out = dict(left)
        for name, dtype in right.items():
            if name in out:
                if name in self.right_keys:
                    continue  # equal to the left key; keep one copy
                raise PlanError(
                    f"join would produce duplicate column {name!r}")
            out[name] = dtype
        return out

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        left = self.children[0].estimated_rows(ctx)
        right = self.children[1].estimated_rows(ctx)
        # Foreign-key-style estimate: output bounded by the probe side.
        return max(left, right) if min(left, right) else 0.0

    def choose_build_side(self, ctx, n_left: int, n_right: int) -> str:
        """Build the hash table on the estimated-smaller input.

        Ties keep the classic build-right layout.  The internal
        childless helper (see :class:`NestedLoopJoin`) falls back to
        actual batch sizes.
        """
        if self.forced_build_side is not None:
            return self.forced_build_side
        if len(self.children) == 2 and ctx is not None:
            est_left = self.children[0].estimated_rows_safe(ctx)
            est_right = self.children[1].estimated_rows_safe(ctx)
        else:
            est_left, est_right = float(n_left), float(n_right)
        return "left" if est_left < est_right else "right"

    def explain_extras(self, ctx) -> List[str]:
        extras = _kernel_extras(ctx)
        build = self.span_extras.get("build_side")
        if build is None and ctx is not None:
            build = self.choose_build_side(ctx, 0, 0)
        if build is not None:
            extras.append(f"build={build}")
        return extras

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        left, right = child_batches
        require_columns(left, self.left_keys, self.name() + " (left)")
        require_columns(right, self.right_keys, self.name() + " (right)")
        if _vectorized(ctx):
            left = kernels.materialize_charged(ctx, left)
            right = kernels.materialize_charged(ctx, right)
        n_left, n_right = batch_rows(left), batch_rows(right)
        build_side = self.choose_build_side(ctx, n_left, n_right)
        n_build = n_left if build_side == "left" else n_right
        self.span_extras["build_side"] = build_side
        # Hash table: roughly one 8-byte slot + entry per build row.
        self.aux_bytes = kernels.HASH_TABLE_BYTES_PER_ROW * n_build
        ctx.charge_tuples(n_left + n_right)
        self._charge_access(ctx, n_left, n_right, n_build)

        if _vectorized(ctx):
            ctx.charge_cpu("hash",
                           ctx.costs.kernel_launch_ns
                           + ctx.costs.vector_join_ns_per_row
                           * (n_left + n_right))
            self.span_extras["kernel"] = "join.vector"
            left_codes, right_codes = kernels.encode_join_keys(
                [left[k] for k in self.left_keys],
                [right[k] for k in self.right_keys])
            li, ri = self._vector_match(ctx, left_codes, right_codes)
        else:
            ctx.charge_cpu("hash",
                           ctx.costs.hash_build_ns_per_row * n_build)
            ctx.charge_cpu("hash", ctx.costs.hash_probe_ns_per_row
                           * (n_left + n_right - n_build))
            li, ri = self._loop_match(left, right, n_left, n_right,
                                      build_side)

        out: Batch = {name: arr[li] for name, arr in left.items()}
        for name, arr in right.items():
            if name in out:
                if name in self.right_keys:
                    continue
                raise PlanError(
                    f"join would produce duplicate column {name!r}")
            out[name] = arr[ri]
        return out

    def _charge_access(self, ctx, n_left: int, n_right: int,
                       n_build: int) -> None:
        """Memory-latency side of the join.

        Charged only when the engine carries a cache model: building and
        probing are random accesses into a hash table sized by the full
        build input, so an out-of-cache build pays memory latency on
        (almost) every probe — the effect the radix join removes.
        """
        cache = getattr(ctx, "cache", None)
        if cache is None:
            return
        working_set = max(1, kernels.HASH_TABLE_BYTES_PER_ROW * n_build)
        ns = cache.random_accesses(n_build, working_set)
        ns += cache.random_accesses(n_left + n_right - n_build,
                                    working_set)
        ctx.charge_cpu("hash", ns)

    def _vector_match(self, ctx, left_codes: np.ndarray,
                      right_codes: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        return kernels.join_match(left_codes, right_codes)

    def _loop_match(self, left: Batch, right: Batch, n_left: int,
                    n_right: int, build_side: str
                    ) -> Tuple[np.ndarray, np.ndarray]:
        """Per-row hash matching; output pairs are always left-major
        (left index ascending, right matches ascending) regardless of
        which side the hash table was built on."""
        left_key_cols = [left[k] for k in self.left_keys]
        right_key_cols = [right[k] for k in self.right_keys]
        left_idx: List[int] = []
        right_idx: List[int] = []
        if build_side == "right":
            build: Dict[tuple, List[int]] = {}
            for i in range(n_right):
                key = tuple(col[i] for col in right_key_cols)
                build.setdefault(key, []).append(i)
            for i in range(n_left):
                key = tuple(col[i] for col in left_key_cols)
                matches = build.get(key)
                if matches:
                    left_idx.extend([i] * len(matches))
                    right_idx.extend(matches)
            return (np.asarray(left_idx, dtype=np.int64),
                    np.asarray(right_idx, dtype=np.int64))
        build = {}
        for i in range(n_left):
            key = tuple(col[i] for col in left_key_cols)
            build.setdefault(key, []).append(i)
        for j in range(n_right):
            key = tuple(col[j] for col in right_key_cols)
            matches = build.get(key)
            if matches:
                left_idx.extend(matches)
                right_idx.extend([j] * len(matches))
        li = np.asarray(left_idx, dtype=np.int64)
        ri = np.asarray(right_idx, dtype=np.int64)
        # Probing with the right side emits right-major pairs; restore
        # the executor's canonical left-major order.
        order = np.lexsort((ri, li))
        return li[order], ri[order]


class RadixHashJoin(HashJoin):
    """Cache-conscious hash join (Manegold/Boncz/Kersten style).

    Both inputs are radix-partitioned on the low bits of their join-key
    codes — enough bits that each partition's hash table fits the
    simulated L2 cache — and then joined partition by partition, so
    probes hit cache-resident tables instead of paying memory latency
    per row.  The output is byte-identical to :class:`HashJoin`'s
    left-major result; only the access pattern (and hence the simulated
    cost) differs.  The loop executor reuses the per-row oracle match
    while charging the radix cost profile.
    """

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_keys: Sequence[str], right_keys: Sequence[str],
                 radix_bits: Optional[int] = None):
        super().__init__(left, right, left_keys, right_keys)
        #: Forced partition bits (plan-level override); None defers to
        #: the context's ``radix_bits`` and finally to auto-sizing.
        self.radix_bits = radix_bits
        self._last_bits = 0

    def name(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in
                          zip(self.left_keys, self.right_keys))
        return f"RadixHashJoin({pairs})"

    def _bits_for(self, ctx, n_build: int) -> int:
        forced = self.radix_bits if self.radix_bits is not None \
            else getattr(ctx, "radix_bits", None)
        if forced is not None:
            return max(0, min(int(forced), kernels.MAX_RADIX_BITS))
        cache = getattr(ctx, "cache", None)
        if cache is not None and cache.levels:
            cache_bytes = cache.levels[-1].size_bytes
        else:
            from repro.hardware.cache import DEFAULT_CACHE_MODEL
            cache_bytes = DEFAULT_CACHE_MODEL.l2_bytes
        return kernels.radix_bits_for(n_build, cache_bytes)

    def explain_extras(self, ctx) -> List[str]:
        extras = super().explain_extras(ctx)
        bits = self.span_extras.get("radix_bits")
        if bits is None and ctx is not None and len(self.children) == 2:
            build = self.choose_build_side(ctx, 0, 0)
            child = self.children[0 if build == "left" else 1]
            bits = self._bits_for(ctx, int(child.estimated_rows_safe(ctx)))
        if bits is not None:
            extras.append(f"bits={bits}")
            extras.append(f"partitions={1 << int(bits)}")
        return extras

    def _charge_access(self, ctx, n_left: int, n_right: int,
                       n_build: int) -> None:
        bits = self._bits_for(ctx, n_build)
        self._last_bits = bits
        self.span_extras["radix_bits"] = bits
        self.span_extras["partitions"] = 1 << bits
        costs = ctx.costs
        passes = kernels.radix_passes(bits)
        if passes:
            # CPU side of partitioning: every pass streams both inputs
            # once; every partition pays a fixed setup (this is what
            # makes over-partitioning lose — the E28 sweet spot).
            ctx.charge_cpu(
                "hash",
                passes * costs.radix_partition_ns_per_row
                * (n_left + n_right)
                + (1 << bits) * costs.radix_partition_setup_ns)
        cache = getattr(ctx, "cache", None)
        if cache is None:
            return
        ns = 0.0
        for _ in range(passes):
            # Partitioning is sequential: read + scatter-write streams.
            ns += cache.sequential_scan(n_left + n_right, 16)
        working_set = max(
            1, (kernels.HASH_TABLE_BYTES_PER_ROW * n_build) >> bits)
        ns += cache.random_accesses(n_build, working_set)
        ns += cache.random_accesses(n_left + n_right - n_build,
                                    working_set)
        ctx.charge_cpu("hash", ns)

    def _vector_match(self, ctx, left_codes: np.ndarray,
                      right_codes: np.ndarray
                      ) -> Tuple[np.ndarray, np.ndarray]:
        self.span_extras["kernel"] = "join.radix"
        return kernels.radix_join_match(left_codes, right_codes,
                                        self._last_bits)


class NestedLoopJoin(PlanNode):
    """Naive quadratic equi-join; the untuned fallback of the optimizer."""

    category = "arithmetic"

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_keys: Sequence[str], right_keys: Sequence[str]):
        super().__init__([left, right])
        if len(left_keys) != len(right_keys) or not left_keys:
            raise PlanError(
                "join needs equally many (>=1) keys on both sides")
        self.left_keys = tuple(left_keys)
        self.right_keys = tuple(right_keys)

    def name(self) -> str:
        pairs = ", ".join(f"{l}={r}" for l, r in
                          zip(self.left_keys, self.right_keys))
        return f"NestedLoopJoin({pairs})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        return HashJoin(self.children[0], self.children[1],
                        self.left_keys, self.right_keys).schema(ctx)

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        left = self.children[0].estimated_rows(ctx)
        right = self.children[1].estimated_rows(ctx)
        return max(left, right) if min(left, right) else 0.0

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        left, right = child_batches
        n_left, n_right = batch_rows(left), batch_rows(right)
        # The whole point of this operator: quadratic compare cost.
        ctx.charge_cpu("arithmetic",
                       ctx.costs.filter_ns_per_value * n_left * n_right)
        ctx.charge_tuples(n_left * max(1, n_right) if n_left and n_right
                          else n_left + n_right)
        # Compute the same result as a hash join (correctness first).
        helper = HashJoin.__new__(HashJoin)
        PlanNode.__init__(helper, [])
        helper.left_keys = self.left_keys
        helper.right_keys = self.right_keys
        helper.forced_build_side = None
        return HashJoin._run(helper, _NullCostContext(ctx), [left, right])


class _NullCostContext:
    """Delegates everything but swallows cost charges (internal reuse)."""

    #: The helper join must not touch the cache model either: the outer
    #: operator already accounts for its own access pattern.
    cache = None

    def __init__(self, inner: ExecutionContext):
        self._inner = inner

    def charge_cpu(self, category: str, ns: float) -> None:
        pass

    def charge_tuples(self, n_rows: int) -> None:
        pass

    def __getattr__(self, item):
        return getattr(self._inner, item)


class AggFunc(enum.Enum):
    SUM = "sum"
    COUNT = "count"
    AVG = "avg"
    MIN = "min"
    MAX = "max"


class Aggregate(PlanNode):
    """Hash aggregation with optional GROUP BY.

    ``aggregates`` is a sequence of ``(func, expr_or_None, alias)``;
    ``expr`` is None only for ``COUNT(*)``.
    """

    category = "hash"

    def __init__(self, child: PlanNode, group_by: Sequence[str],
                 aggregates: Sequence[Tuple[AggFunc, Optional[Expr], str]]):
        super().__init__([child])
        if not aggregates and not group_by:
            raise PlanError("aggregate needs at least one aggregate or key")
        aliases = [a for __, __, a in aggregates]
        if len(set(aliases) | set(group_by)) != len(aliases) + len(group_by):
            raise PlanError("duplicate output names in aggregation")
        for func, expr, alias in aggregates:
            if expr is None and func is not AggFunc.COUNT:
                raise PlanError(f"{func.value}(*) is not defined")
        self.group_by = tuple(group_by)
        self.aggregates = tuple(aggregates)

    def name(self) -> str:
        aggs = ", ".join(
            f"{f.value}({e if e is not None else '*'}) AS {a}"
            for f, e, a in self.aggregates)
        if self.group_by:
            return f"Aggregate(by {', '.join(self.group_by)}: {aggs})"
        return f"Aggregate({aggs})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        child_schema = self.children[0].schema(ctx)
        out: Dict[str, DataType] = {}
        for key in self.group_by:
            if key not in child_schema:
                raise PlanError(f"GROUP BY column {key!r} not available")
            out[key] = child_schema[key]
        for func, expr, alias in self.aggregates:
            if func is AggFunc.COUNT:
                out[alias] = DataType.INT64
            elif func is AggFunc.AVG:
                out[alias] = DataType.FLOAT64
            else:
                out[alias] = expr.dtype(child_schema)
        return out

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        if not self.group_by:
            return 1.0
        child = self.children[0].estimated_rows(ctx)
        return max(1.0, child ** 0.5)  # square-root heuristic

    def explain_extras(self, ctx) -> List[str]:
        return _kernel_extras(ctx)

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        batch = child_batches[0]
        if _vectorized(ctx):
            return self._run_vectorized(
                ctx, kernels.materialize_charged(ctx, batch))
        n = batch_rows(batch)
        ctx.charge_cpu("hash", ctx.costs.group_ns_per_row * n)
        ctx.charge_cpu("arithmetic",
                       ctx.costs.agg_ns_per_value * n
                       * max(1, len(self.aggregates)))
        ctx.charge_tuples(n)

        if self.group_by:
            group_ids, group_keys = self._group(batch, n)
            self.aux_bytes = 48 * len(group_keys) + 8 * n
        else:
            # A global aggregate always produces exactly one row, even
            # over empty input (COUNT(*) = 0), per SQL semantics.
            group_ids = np.zeros(n, dtype=np.int64)
            group_keys = {(): 0}
        n_groups = len(group_keys)
        child_schema = self.children[0].schema(ctx)

        out: Batch = {}
        ordered = sorted(group_keys.items(), key=lambda kv: kv[1])
        for pos, key_name in enumerate(self.group_by):
            values = [key for key, __ in ordered]
            dtype = child_schema[key_name]
            if dtype is DataType.STRING:
                col = np.empty(n_groups, dtype=object)
                for i, key in enumerate(values):
                    col[i] = key[pos]
            else:
                col = np.asarray([key[pos] for key in values],
                                 dtype=dtype.numpy_dtype)
            out[key_name] = col

        for func, expr, alias in self.aggregates:
            values = self._aggregate(func, expr, batch, group_ids, n_groups)
            if func is AggFunc.COUNT:
                values = values.astype(np.int64)
            elif func is not AggFunc.AVG and expr is not None \
                    and expr.dtype(child_schema) is DataType.INT64:
                values = values.astype(np.int64)
            out[alias] = values
        return out

    def _run_vectorized(self, ctx: ExecutionContext,
                        batch: Batch) -> Batch:
        n = batch_rows(batch)
        costs = ctx.costs
        ctx.charge_cpu("hash", costs.kernel_launch_ns
                       + costs.vector_group_ns_per_row * n)
        ctx.charge_cpu("arithmetic",
                       costs.vector_agg_ns_per_value * n
                       * max(1, len(self.aggregates)))
        ctx.charge_tuples(n)
        self.span_extras["kernel"] = "aggregate.vector"
        child_schema = self.children[0].schema(ctx)

        out: Batch = {}
        if self.group_by:
            group_ids, n_groups = kernels.dict_encode(
                [batch[k] for k in self.group_by])
            self.aux_bytes = 48 * n_groups + 8 * n
            # Representative row per group: output is key-sorted (the
            # dictionary codes ascend with the composite key), unlike
            # the loop executor's first-occurrence order.
            first = kernels.group_first_index(group_ids, n_groups)
            for key_name in self.group_by:
                out[key_name] = batch[key_name][first]
        else:
            group_ids = np.zeros(n, dtype=np.int64)
            n_groups = 1

        for func, expr, alias in self.aggregates:
            values = self._aggregate_vectorized(func, expr, batch,
                                                group_ids, n_groups)
            if func is AggFunc.COUNT:
                values = values.astype(np.int64)
            elif func is not AggFunc.AVG and expr is not None \
                    and expr.dtype(child_schema) is DataType.INT64:
                values = values.astype(np.int64)
            out[alias] = values
        return out

    @staticmethod
    def _aggregate_vectorized(func: AggFunc, expr: Optional[Expr],
                              batch: Batch, group_ids: np.ndarray,
                              n_groups: int) -> np.ndarray:
        if n_groups == 0:
            return np.zeros(0, dtype=np.float64)
        if func is AggFunc.COUNT:
            return kernels.group_count(group_ids, n_groups)
        values = np.asarray(kernels.compile_expr(expr)(batch),
                            dtype=np.float64)
        if values.size == 0:
            # Only the global aggregate reaches here with zero rows
            # (dense grouped ids imply populated groups); match the
            # loop executor's SQL identities over empty input.
            fill = {AggFunc.SUM: 0.0, AggFunc.AVG: 0.0,
                    AggFunc.MIN: np.inf, AggFunc.MAX: -np.inf}[func]
            return np.full(n_groups, fill, dtype=np.float64)
        if func is AggFunc.SUM:
            return kernels.grouped_reduce(values, group_ids,
                                          n_groups, "sum")
        if func is AggFunc.AVG:
            sums = kernels.grouped_reduce(values, group_ids,
                                          n_groups, "sum")
            counts = kernels.group_count(group_ids, n_groups)
            return sums / np.maximum(counts, 1)
        op = "min" if func is AggFunc.MIN else "max"
        return kernels.grouped_reduce(values, group_ids, n_groups, op)

    def _group(self, batch: Batch, n: int):
        key_cols = [batch[k] for k in self.group_by]
        group_keys: Dict[tuple, int] = {}
        group_ids = np.empty(n, dtype=np.int64)
        for i in range(n):
            key = tuple(col[i] for col in key_cols)
            gid = group_keys.get(key)
            if gid is None:
                gid = len(group_keys)
                group_keys[key] = gid
            group_ids[i] = gid
        return group_ids, group_keys

    @staticmethod
    def _aggregate(func: AggFunc, expr: Optional[Expr], batch: Batch,
                   group_ids: np.ndarray, n_groups: int) -> np.ndarray:
        if n_groups == 0:
            # Grouped aggregation over empty input: zero output rows.
            return np.zeros(0, dtype=np.float64)
        if func is AggFunc.COUNT:
            counts = np.bincount(group_ids, minlength=n_groups)
            return counts.astype(np.int64)
        values = np.asarray(expr.evaluate(batch), dtype=np.float64)
        if func is AggFunc.SUM or func is AggFunc.AVG:
            sums = np.bincount(group_ids, weights=values,
                               minlength=n_groups)
            if func is AggFunc.SUM:
                return sums
            counts = np.bincount(group_ids, minlength=n_groups)
            return sums / np.maximum(counts, 1)
        fill = np.inf if func is AggFunc.MIN else -np.inf
        out = np.full(n_groups, fill, dtype=np.float64)
        ufunc = np.minimum if func is AggFunc.MIN else np.maximum
        ufunc.at(out, group_ids, values)
        return out


class MergeJoin(PlanNode):
    """Equi-join by merging two inputs sorted on their keys.

    Both children MUST deliver rows sorted ascending on the join keys;
    the operator verifies this and raises otherwise (silent wrong
    results are worse than an error).  Cost is linear in the two input
    sizes plus the output — the textbook alternative to hashing when
    sort order is already available.
    """

    category = "sort"

    def __init__(self, left: PlanNode, right: PlanNode,
                 left_key: str, right_key: str):
        super().__init__([left, right])
        self.left_key = left_key
        self.right_key = right_key

    def name(self) -> str:
        return f"MergeJoin({self.left_key}={self.right_key})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        return HashJoin(self.children[0], self.children[1],
                        [self.left_key], [self.right_key]).schema(ctx)

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        left = self.children[0].estimated_rows(ctx)
        right = self.children[1].estimated_rows(ctx)
        return max(left, right) if min(left, right) else 0.0

    @staticmethod
    def _check_sorted(values: np.ndarray, side: str) -> None:
        if len(values) > 1 and np.any(values[1:] < values[:-1]):
            raise PlanError(
                f"MergeJoin {side} input is not sorted on its join key")

    def explain_extras(self, ctx) -> List[str]:
        return _kernel_extras(ctx)

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        left, right = child_batches
        require_columns(left, [self.left_key], self.name() + " (left)")
        require_columns(right, [self.right_key], self.name() + " (right)")
        if _vectorized(ctx):
            left = kernels.materialize_charged(ctx, left)
            right = kernels.materialize_charged(ctx, right)
        lk = left[self.left_key]
        rk = right[self.right_key]
        self._check_sorted(lk, "left")
        self._check_sorted(rk, "right")
        n_left, n_right = len(lk), len(rk)
        ctx.charge_tuples(n_left + n_right)
        cache = getattr(ctx, "cache", None)
        if cache is not None:
            # Merging is purely sequential: one stream over each input.
            ctx.charge_cpu("sort",
                           cache.sequential_scan(n_left + n_right, 16))

        if _vectorized(ctx):
            ctx.charge_cpu("sort",
                           ctx.costs.kernel_launch_ns
                           + ctx.costs.vector_join_ns_per_row
                           * (n_left + n_right))
            self.span_extras["kernel"] = "merge.vector"
            li, ri = kernels.merge_match(lk, rk)
            out: Batch = {name: arr[li] for name, arr in left.items()}
            for name, arr in right.items():
                if name in out:
                    if name == self.right_key:
                        continue
                    raise PlanError(
                        f"join would produce duplicate column {name!r}")
                out[name] = arr[ri]
            return out

        ctx.charge_cpu("sort", ctx.costs.filter_ns_per_value
                       * (n_left + n_right))
        left_idx: List[int] = []
        right_idx: List[int] = []
        i = j = 0
        while i < n_left and j < n_right:
            if lk[i] < rk[j]:
                i += 1
            elif lk[i] > rk[j]:
                j += 1
            else:
                # Collect the full duplicate run on both sides.
                key = lk[i]
                i_end = i
                while i_end < n_left and lk[i_end] == key:
                    i_end += 1
                j_end = j
                while j_end < n_right and rk[j_end] == key:
                    j_end += 1
                for a in range(i, i_end):
                    for b in range(j, j_end):
                        left_idx.append(a)
                        right_idx.append(b)
                i, j = i_end, j_end

        li = np.asarray(left_idx, dtype=np.int64)
        ri = np.asarray(right_idx, dtype=np.int64)
        out: Batch = {name: arr[li] for name, arr in left.items()}
        for name, arr in right.items():
            if name in out:
                if name == self.right_key:
                    continue
                raise PlanError(
                    f"join would produce duplicate column {name!r}")
            out[name] = arr[ri]
        return out


class Distinct(PlanNode):
    """Remove duplicate rows, preserving first-occurrence order."""

    category = "hash"

    def __init__(self, child: PlanNode):
        super().__init__([child])

    def name(self) -> str:
        return "Distinct"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        return self.children[0].schema(ctx)

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        child = self.children[0].estimated_rows(ctx)
        return max(1.0, child ** 0.5)

    def explain_extras(self, ctx) -> List[str]:
        return _kernel_extras(ctx)

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        batch = child_batches[0]
        if _vectorized(ctx):
            batch = kernels.materialize_charged(ctx, batch)
            n = batch_rows(batch)
            ctx.charge_cpu("hash",
                           ctx.costs.kernel_launch_ns
                           + ctx.costs.vector_distinct_ns_per_row * n)
            ctx.charge_tuples(n)
            self.span_extras["kernel"] = "distinct.vector"
            idx = kernels.first_occurrence_order(
                [batch[c] for c in batch])
            return {name: arr[idx] for name, arr in batch.items()}
        n = batch_rows(batch)
        ctx.charge_cpu("hash", ctx.costs.group_ns_per_row * n)
        ctx.charge_tuples(n)
        columns = list(batch)
        seen: Dict[tuple, None] = {}
        keep: List[int] = []
        for i in range(n):
            key = tuple(batch[c][i] for c in columns)
            if key not in seen:
                seen[key] = None
                keep.append(i)
        idx = np.asarray(keep, dtype=np.int64)
        return {name: arr[idx] for name, arr in batch.items()}


class Sort(PlanNode):
    """Stable multi-key sort."""

    category = "sort"

    def __init__(self, child: PlanNode,
                 keys: Sequence[Tuple[str, bool]]):
        super().__init__([child])
        if not keys:
            raise PlanError("sort needs at least one key")
        self.keys = tuple(keys)  # (column, ascending)

    def name(self) -> str:
        rendered = ", ".join(f"{k} {'ASC' if asc else 'DESC'}"
                             for k, asc in self.keys)
        return f"Sort({rendered})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        return self.children[0].schema(ctx)

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        return self.children[0].estimated_rows(ctx)

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        batch = child_batches[0]
        require_columns(batch, [k for k, __ in self.keys], self.name())
        if _vectorized(ctx):
            # Sort is a pipeline breaker: gather any pending selection
            # once, then permute materialised columns.
            batch = kernels.materialize_charged(ctx, batch)
        n = batch_rows(batch)
        if n > 1:
            ctx.charge_cpu("sort", ctx.costs.sort_ns_per_compare
                           * n * math.log2(n))
        ctx.charge_tuples(n)
        order = np.arange(n)
        self.aux_bytes = 8 * n  # the permutation vector
        # Stable sorts applied from the least significant key backwards.
        for column, ascending in reversed(self.keys):
            values = batch[column][order]
            idx = np.argsort(values, kind="stable")
            if not ascending:
                idx = idx[::-1]
            order = order[idx]
        return {name: arr[order] for name, arr in batch.items()}


class Limit(PlanNode):
    """Keep the first ``n`` rows."""

    category = "scan"

    def __init__(self, child: PlanNode, n: int):
        super().__init__([child])
        if n < 0:
            raise PlanError(f"LIMIT must be >= 0, got {n}")
        self.n = n

    def name(self) -> str:
        return f"Limit({self.n})"

    def schema(self, ctx: ExecutionContext) -> Dict[str, DataType]:
        return self.children[0].schema(ctx)

    def estimated_rows(self, ctx: ExecutionContext) -> float:
        return min(float(self.n), self.children[0].estimated_rows(ctx))

    def _run(self, ctx: ExecutionContext,
             child_batches: List[Batch]) -> Batch:
        batch = child_batches[0]
        base, sel = kernels.split_batch(batch)
        if sel is not None:
            # Truncate the selection instead of materialising.
            return kernels.SelBatch(base, sel[:self.n])
        return {name: arr[:self.n] for name, arr in base.items()}
