"""The MiniDB planner/optimizer.

Turns a parsed :class:`~repro.db.parser.SelectStatement` into a physical
plan.  Two quality levels exist, driven by the engine's ``tuned`` flag —
deliberately so, to reproduce the tutorial's "factor 2-10 between
out-of-the-box and tuned configurations" observation (slides 42-45):

- **tuned** (default): column pruning on scans, predicate pushdown below
  joins, hash joins with the build side on the smaller input;
- **untuned**: whole-row scans, filters evaluated only after all joins,
  nested-loop joins in textual order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.db.expressions import (
    ColumnRef,
    Expr,
    conjoin,
    split_conjuncts,
)
from repro.db.indexes import IndexCatalog, try_index_scan
from repro.db.operators import (
    AggFunc,
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    NestedLoopJoin,
    Project,
    SeqScan,
    Sort,
)
from repro.db.parser import SelectStatement
from repro.db.plan import PlanNode
from repro.db.storage import Database
from repro.errors import PlanError


@dataclass(frozen=True)
class PlannerOptions:
    """Optimizer behaviour knobs."""

    tuned: bool = True
    prune_columns: bool = True
    pushdown: bool = True
    hash_joins: bool = True

    @classmethod
    def untuned(cls) -> "PlannerOptions":
        """The out-of-the-box configuration of slide 42's war story:
        no column pruning, no predicate pushdown — but still sane join
        algorithms (the 2-10x band is about configuration, not about
        quadratic blow-ups)."""
        return cls(tuned=False, prune_columns=False, pushdown=False,
                   hash_joins=True)

    @classmethod
    def naive(cls) -> "PlannerOptions":
        """Everything off, including hash joins: the strawman prototype
        a nested-loop comparison baseline needs (see E19's speed-up)."""
        return cls(tuned=False, prune_columns=False, pushdown=False,
                   hash_joins=False)


def _referenced_columns(statement: SelectStatement) -> Set[str]:
    """Every column name the statement touches outside join conditions.

    Join-key columns are resolved separately (see :func:`_resolve_join`)
    because the same key name may legitimately appear on both sides of an
    equi-join.
    """
    columns: Set[str] = set()
    for item in statement.items:
        if item.expr is not None:
            columns |= item.expr.columns()
    if statement.where is not None:
        columns |= statement.where.columns()
    columns |= set(statement.group_by)
    return columns


def _resolve_join(database: Database, join, available: Sequence[str]
                  ) -> Tuple[str, str, str]:
    """Orient one join clause.

    Returns ``(left_col, left_owner, right_col)`` where ``left_col``
    comes from the tables joined so far and ``right_col`` from the new
    table.  Handles both orientations and same-named keys.
    """
    new = join.table
    a, b = join.left_column, join.right_column

    def owners_in_available(col: str) -> List[str]:
        return [t for t in available
                if database.table(t).has_column(col)]

    def in_new(col: str) -> bool:
        return database.table(new).has_column(col)

    if a == b:
        owners = owners_in_available(a)
        if not owners or not in_new(a):
            raise PlanError(
                f"join key {a!r} must exist both in {new!r} and in an "
                f"already-joined table ({list(available)})")
        if len(owners) > 1:
            raise PlanError(f"join key {a!r} is ambiguous across {owners}")
        return a, owners[0], a

    for left_col, right_col in ((a, b), (b, a)):
        owners = owners_in_available(left_col)
        if len(owners) == 1 and in_new(right_col):
            return left_col, owners[0], right_col
    raise PlanError(
        f"cannot orient join condition {a}={b}: one side must come from "
        f"{list(available)} and the other from {new!r}")


def plan_statement(statement: SelectStatement, database: Database,
                   options: Optional[PlannerOptions] = None,
                   indexes: Optional[IndexCatalog] = None) -> PlanNode:
    """Build the physical plan for one statement.

    When an :class:`~repro.db.indexes.IndexCatalog` is supplied and the
    options are tuned, a selective indexable equality conjunct turns the
    base access path into an :class:`~repro.db.indexes.IndexScan`.
    """
    options = options if options is not None else PlannerOptions()
    tables = statement.tables
    for table in tables:
        database.table(table)  # raises CatalogError for unknown tables
    if len(set(tables)) != len(tables):
        raise PlanError(f"self-joins are not supported: {tables}")

    # Which table owns each referenced column (must be unambiguous).
    ownership: Dict[str, str] = {}
    for column in _referenced_columns(statement):
        owner, __ = database.resolve_column(column, tables)
        ownership[column] = owner

    per_table_columns: Dict[str, Set[str]] = {t: set() for t in tables}
    for column, owner in ownership.items():
        per_table_columns[owner].add(column)

    # Orient join clauses and account their key columns per table.
    oriented: List[Tuple[str, str, str]] = []  # (left_col, left_owner, right_col)
    available: List[str] = [statement.table]
    for join in statement.joins:
        left_col, left_owner, right_col = _resolve_join(
            database, join, available)
        oriented.append((left_col, left_owner, right_col))
        per_table_columns[left_owner].add(left_col)
        per_table_columns[join.table].add(right_col)
        available.append(join.table)

    # Split WHERE into pushable and residual conjuncts.
    pushed: Dict[str, List[Expr]] = {t: [] for t in tables}
    residual: List[Expr] = []
    if statement.where is not None:
        for conjunct in split_conjuncts(statement.where):
            owners = {ownership[c] for c in conjunct.columns()}
            if options.pushdown and len(owners) == 1:
                pushed[owners.pop()].append(conjunct)
            else:
                residual.append(conjunct)

    def scan_for(table: str) -> PlanNode:
        columns: Optional[List[str]] = None
        if options.prune_columns:
            columns = sorted(per_table_columns[table])
            if not columns:
                # COUNT(*)-style queries reference no columns; a scan
                # still needs one to carry the row count.
                columns = [database.table(table).column_names[0]]
        conjuncts = list(pushed[table])
        node: Optional[PlanNode] = None
        if indexes is not None and options.tuned:
            for i, conjunct in enumerate(conjuncts):
                index_scan = try_index_scan(database, indexes, table,
                                            conjunct, columns)
                if index_scan is not None:
                    node = index_scan
                    del conjuncts[i]
                    break
        if node is None:
            node = SeqScan(table, columns=columns)
        if conjuncts:
            node = Filter(node, conjoin(conjuncts))
        return node

    plan = scan_for(statement.table)
    for join, (left_col, __, right_col) in zip(statement.joins, oriented):
        right = scan_for(join.table)
        if options.hash_joins:
            plan = HashJoin(plan, right, [left_col], [right_col])
        else:
            plan = NestedLoopJoin(plan, right, [left_col], [right_col])

    if residual:
        plan = Filter(plan, conjoin(residual))

    plan = _plan_output(statement, plan)

    if statement.distinct:
        plan = Distinct(plan)
    if statement.order_by:
        plan = Sort(plan, statement.order_by)
    if statement.limit is not None:
        plan = Limit(plan, statement.limit)
    return plan


def _plan_output(statement: SelectStatement, plan: PlanNode) -> PlanNode:
    """Aggregation and final projection."""
    if statement.has_aggregates or statement.group_by:
        aggregates: List[Tuple[AggFunc, Optional[Expr], str]] = []
        for item in statement.items:
            if item.is_aggregate:
                aggregates.append((item.agg, item.expr, item.alias))
            else:
                if not isinstance(item.expr, ColumnRef) \
                        or item.expr.name not in statement.group_by:
                    raise PlanError(
                        f"non-aggregate output {item.alias!r} must be a "
                        f"GROUP BY column; grouped by "
                        f"{list(statement.group_by)}")
        plan = Aggregate(plan, statement.group_by, aggregates)
        # Reorder/rename the aggregate's output to the SELECT list shape.
        items = []
        for item in statement.items:
            source = item.alias if item.is_aggregate else item.expr.name
            items.append((ColumnRef(source), item.alias))
        aliases = {alias for __, alias in items}
        for column, __ in statement.order_by:
            if column not in aliases:
                raise PlanError(
                    f"ORDER BY column {column!r} is not in the output; "
                    f"outputs: {sorted(aliases)}")
        plan = Project(plan, items)
        if statement.having is not None:
            unknown = [c for c in statement.having.columns()
                       if c not in aliases]
            if unknown:
                raise PlanError(
                    f"HAVING references {unknown} which are not output "
                    f"columns; outputs: {sorted(aliases)}")
            plan = Filter(plan, statement.having)
        return plan

    if statement.having is not None:
        raise PlanError("HAVING requires GROUP BY or aggregates")
    items = [(item.expr, item.alias) for item in statement.items]
    return Project(plan, items)


def count_plan_nodes(plan: PlanNode) -> int:
    """Number of nodes in a plan (used to charge optimizer CPU cost)."""
    return sum(1 for __ in plan.walk())
