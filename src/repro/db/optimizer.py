"""The MiniDB planner/optimizer.

Turns a parsed :class:`~repro.db.parser.SelectStatement` into a physical
plan.  Two planners coexist:

**v1, heuristic** — quality driven by the engine's ``tuned`` flag,
deliberately so, to reproduce the tutorial's "factor 2-10 between
out-of-the-box and tuned configurations" observation (slides 42-45):

- *tuned* (default): column pruning on scans, predicate pushdown below
  joins, hash joins with the build side on the smaller input;
- *untuned*: whole-row scans, filters evaluated only after all joins,
  nested-loop joins in textual order.

**v2, cost-based** (``PlannerOptions.cost_based`` or any ``/*+ ... */``
hint in the statement) — Selinger-style left-deep join-order
enumeration (exact dynamic programming up to :data:`MAX_DP_TABLES`
relations, greedy beyond), cardinalities from the
:class:`~repro.db.statistics.StatisticsCatalog` via
:class:`~repro.db.costmodel.CardinalityEstimator`, operator costs from
a calibrated :class:`~repro.db.costmodel.CostModel`, and physical
operators (hash/merge/loop join, seq/index scan, build side) chosen by
the chainable :mod:`repro.db.physops` selection stages.  Every node of
a cost-based plan carries ``est_rows``/``est_cost_ns`` annotations that
EXPLAIN renders and E25 compares against actuals.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Set, Tuple

from repro.db.costmodel import (
    CardinalityEstimator,
    CostModel,
    DEFAULT_COST_MODEL,
)
from repro.db.disk import PAGE_SIZE_BYTES
from repro.db.expressions import (
    ColumnRef,
    Expr,
    conjoin,
    estimate_selectivity,
    split_conjuncts,
)
from repro.db.indexes import IndexCatalog, IndexScan, try_index_scan
from repro.db.operators import (
    AggFunc,
    Aggregate,
    Distinct,
    Filter,
    HashJoin,
    Limit,
    MergeJoin,
    NestedLoopJoin,
    Project,
    RadixHashJoin,
    SeqScan,
    Sort,
)
from repro.db.parser import SelectStatement
from repro.db.physops import (
    CostBasedOperatorSelection,
    HintOperatorSelection,
    JoinStep,
    JOIN_OPERATORS,
    OperatorSelectionContext,
    PhysicalOperatorAssignment,
    join_operator_cost,
)
from repro.db.plan import PlanNode, sanitize_estimate
from repro.db.statistics import StatisticsCatalog
from repro.db.storage import Database
from repro.errors import PlanError

#: Exact DP enumeration up to this many relations; greedy beyond.
MAX_DP_TABLES = 6


@dataclass(frozen=True)
class PlannerOptions:
    """Optimizer behaviour knobs."""

    tuned: bool = True
    prune_columns: bool = True
    pushdown: bool = True
    hash_joins: bool = True
    #: Use the v2 cost-based planner (join-order enumeration + physical
    #: operator selection) instead of the v1 heuristics.
    cost_based: bool = False

    @classmethod
    def untuned(cls) -> "PlannerOptions":
        """The out-of-the-box configuration of slide 42's war story:
        no column pruning, no predicate pushdown — but still sane join
        algorithms (the 2-10x band is about configuration, not about
        quadratic blow-ups)."""
        return cls(tuned=False, prune_columns=False, pushdown=False,
                   hash_joins=True)

    @classmethod
    def naive(cls) -> "PlannerOptions":
        """Everything off, including hash joins: the strawman prototype
        a nested-loop comparison baseline needs (see E19's speed-up)."""
        return cls(tuned=False, prune_columns=False, pushdown=False,
                   hash_joins=False)

    @classmethod
    def cost(cls) -> "PlannerOptions":
        """The v2 cost-based planner with all tuning on."""
        return cls(cost_based=True)


def _referenced_columns(statement: SelectStatement) -> Set[str]:
    """Every column name the statement touches outside join conditions.

    Join-key columns are resolved separately (see :func:`_resolve_join`)
    because the same key name may legitimately appear on both sides of an
    equi-join.
    """
    columns: Set[str] = set()
    for item in statement.items:
        if item.expr is not None:
            columns |= item.expr.columns()
    if statement.where is not None:
        columns |= statement.where.columns()
    columns |= set(statement.group_by)
    return columns


def _resolve_join(database: Database, join, available: Sequence[str]
                  ) -> Tuple[str, str, str]:
    """Orient one join clause.

    Returns ``(left_col, left_owner, right_col)`` where ``left_col``
    comes from the tables joined so far and ``right_col`` from the new
    table.  Handles both orientations and same-named keys.
    """
    new = join.table
    a, b = join.left_column, join.right_column

    def owners_in_available(col: str) -> List[str]:
        return [t for t in available
                if database.table(t).has_column(col)]

    def in_new(col: str) -> bool:
        return database.table(new).has_column(col)

    if a == b:
        owners = owners_in_available(a)
        if not owners or not in_new(a):
            raise PlanError(
                f"join key {a!r} must exist both in {new!r} and in an "
                f"already-joined table ({list(available)})")
        if len(owners) > 1:
            raise PlanError(f"join key {a!r} is ambiguous across {owners}")
        return a, owners[0], a

    for left_col, right_col in ((a, b), (b, a)):
        owners = owners_in_available(left_col)
        if len(owners) == 1 and in_new(right_col):
            return left_col, owners[0], right_col
    raise PlanError(
        f"cannot orient join condition {a}={b}: one side must come from "
        f"{list(available)} and the other from {new!r}")


def plan_statement(statement: SelectStatement, database: Database,
                   options: Optional[PlannerOptions] = None,
                   indexes: Optional[IndexCatalog] = None,
                   stats: Optional[StatisticsCatalog] = None,
                   cost_model: Optional[CostModel] = None,
                   cache=None) -> PlanNode:
    """Build the physical plan for one statement.

    Dispatches to the v2 cost-based planner when the options say so or
    when the statement carries ``/*+ ... */`` hints (hints are a
    cost-based-planner feature; they force its hands, so they imply it).
    Otherwise the v1 heuristic planner runs, unchanged.  *cache* is an
    optional counter-free :class:`~repro.hardware.cache.CacheHierarchy`
    the cost-based planner uses to price join memory-access patterns.
    """
    options = options if options is not None else PlannerOptions()
    tables = statement.tables
    for table in tables:
        database.table(table)  # raises CatalogError for unknown tables
    if len(set(tables)) != len(tables):
        raise PlanError(f"self-joins are not supported: {tables}")
    if options.cost_based or not statement.hints.is_empty:
        return _plan_cost_based(statement, database, options, indexes,
                                stats, cost_model, cache)
    return _plan_heuristic(statement, database, options, indexes)


def _plan_heuristic(statement: SelectStatement, database: Database,
                    options: PlannerOptions,
                    indexes: Optional[IndexCatalog]) -> PlanNode:
    """The v1 planner: textual join order, tuned/untuned heuristics.

    When an :class:`~repro.db.indexes.IndexCatalog` is supplied and the
    options are tuned, a selective indexable equality conjunct turns the
    base access path into an :class:`~repro.db.indexes.IndexScan`.
    """
    tables = statement.tables

    # Which table owns each referenced column (must be unambiguous).
    ownership: Dict[str, str] = {}
    for column in _referenced_columns(statement):
        owner, __ = database.resolve_column(column, tables)
        ownership[column] = owner

    per_table_columns: Dict[str, Set[str]] = {t: set() for t in tables}
    for column, owner in ownership.items():
        per_table_columns[owner].add(column)

    # Orient join clauses and account their key columns per table.
    oriented: List[Tuple[str, str, str]] = []  # (left_col, left_owner, right_col)
    available: List[str] = [statement.table]
    for join in statement.joins:
        left_col, left_owner, right_col = _resolve_join(
            database, join, available)
        oriented.append((left_col, left_owner, right_col))
        per_table_columns[left_owner].add(left_col)
        per_table_columns[join.table].add(right_col)
        available.append(join.table)

    # Split WHERE into pushable and residual conjuncts.
    pushed: Dict[str, List[Expr]] = {t: [] for t in tables}
    residual: List[Expr] = []
    if statement.where is not None:
        for conjunct in split_conjuncts(statement.where):
            owners = {ownership[c] for c in conjunct.columns()}
            if options.pushdown and len(owners) == 1:
                pushed[owners.pop()].append(conjunct)
            else:
                residual.append(conjunct)

    def scan_for(table: str) -> PlanNode:
        columns: Optional[List[str]] = None
        if options.prune_columns:
            columns = sorted(per_table_columns[table])
            if not columns:
                # COUNT(*)-style queries reference no columns; a scan
                # still needs one to carry the row count.
                columns = [database.table(table).column_names[0]]
        conjuncts = list(pushed[table])
        node: Optional[PlanNode] = None
        if indexes is not None and options.tuned:
            for i, conjunct in enumerate(conjuncts):
                index_scan = try_index_scan(database, indexes, table,
                                            conjunct, columns)
                if index_scan is not None:
                    node = index_scan
                    del conjuncts[i]
                    break
        if node is None:
            node = SeqScan(table, columns=columns)
        if conjuncts:
            predicate = conjoin(conjuncts)
            if isinstance(node, SeqScan):
                # Pushdown reaches the scan: let zone maps prune blocks
                # against the very predicate the Filter above applies.
                node.prune_for = predicate
            node = Filter(node, predicate)
        return node

    plan = scan_for(statement.table)
    for join, (left_col, __, right_col) in zip(statement.joins, oriented):
        right = scan_for(join.table)
        if options.hash_joins:
            plan = HashJoin(plan, right, [left_col], [right_col])
        else:
            plan = NestedLoopJoin(plan, right, [left_col], [right_col])

    if residual:
        plan = Filter(plan, conjoin(residual))

    plan = _plan_output(statement, plan)

    if statement.distinct:
        plan = Distinct(plan)
    if statement.order_by:
        plan = Sort(plan, statement.order_by)
    if statement.limit is not None:
        plan = Limit(plan, statement.limit)
    return plan


def _plan_output(statement: SelectStatement, plan: PlanNode) -> PlanNode:
    """Aggregation and final projection."""
    if statement.has_aggregates or statement.group_by:
        aggregates: List[Tuple[AggFunc, Optional[Expr], str]] = []
        for item in statement.items:
            if item.is_aggregate:
                aggregates.append((item.agg, item.expr, item.alias))
            else:
                if not isinstance(item.expr, ColumnRef) \
                        or item.expr.name not in statement.group_by:
                    raise PlanError(
                        f"non-aggregate output {item.alias!r} must be a "
                        f"GROUP BY column; grouped by "
                        f"{list(statement.group_by)}")
        plan = Aggregate(plan, statement.group_by, aggregates)
        # Reorder/rename the aggregate's output to the SELECT list shape.
        items = []
        for item in statement.items:
            source = item.alias if item.is_aggregate else item.expr.name
            items.append((ColumnRef(source), item.alias))
        aliases = {alias for __, alias in items}
        for column, __ in statement.order_by:
            if column not in aliases:
                raise PlanError(
                    f"ORDER BY column {column!r} is not in the output; "
                    f"outputs: {sorted(aliases)}")
        plan = Project(plan, items)
        if statement.having is not None:
            unknown = [c for c in statement.having.columns()
                       if c not in aliases]
            if unknown:
                raise PlanError(
                    f"HAVING references {unknown} which are not output "
                    f"columns; outputs: {sorted(aliases)}")
            plan = Filter(plan, statement.having)
        return plan

    if statement.having is not None:
        raise PlanError("HAVING requires GROUP BY or aggregates")
    items = [(item.expr, item.alias) for item in statement.items]
    return Project(plan, items)


def count_plan_nodes(plan: PlanNode) -> int:
    """Number of nodes in a plan (used to charge optimizer CPU cost)."""
    return sum(1 for __ in plan.walk())


# ---------------------------------------------------------------------------
# v2: cost-based planning
# ---------------------------------------------------------------------------

def _join_edges(statement: SelectStatement, database: Database
                ) -> List[Tuple[str, str, str, str]]:
    """Resolve every join clause into a symmetric ``(table_a, col_a,
    table_b, col_b)`` edge — no textual orientation, the enumerator
    decides order."""
    tables = statement.tables
    edges: List[Tuple[str, str, str, str]] = []
    for join in statement.joins:
        a, b = join.left_column, join.right_column
        if a == b:
            owners = [t for t in tables
                      if database.table(t).has_column(a)]
            if len(owners) != 2:
                raise PlanError(
                    f"join key {a!r} must appear in exactly two of "
                    f"{tables}, found in {owners}")
            edges.append((owners[0], a, owners[1], a))
        else:
            table_a, __ = database.resolve_column(a, tables)
            table_b, __ = database.resolve_column(b, tables)
            if table_a == table_b:
                raise PlanError(
                    f"join condition {a}={b} references only "
                    f"{table_a!r}; it must link two tables")
            edges.append((table_a, a, table_b, b))
    return edges


def enumerate_join_orders(statement: SelectStatement, database: Database,
                          max_orders: Optional[int] = None
                          ) -> List[Tuple[str, ...]]:
    """All connected left-deep join orders of the statement's tables.

    Cross products are never enumerated: each table must join the prefix
    through at least one edge.  E25 sweeps this space (hinting each
    order) to locate the best and worst plans the optimizer could pick.
    Raises :class:`PlanError` if the join graph is disconnected.
    """
    tables = statement.tables
    if len(set(tables)) != len(tables):
        raise PlanError(f"self-joins are not supported: {tables}")
    if len(tables) == 1:
        return [(tables[0],)]
    adjacency: Dict[str, Set[str]] = {t: set() for t in tables}
    for table_a, __, table_b, __b in _join_edges(statement, database):
        adjacency[table_a].add(table_b)
        adjacency[table_b].add(table_a)

    orders: List[Tuple[str, ...]] = []

    def extend(prefix: List[str], remaining: List[str]) -> None:
        if max_orders is not None and len(orders) >= max_orders:
            return
        if not remaining:
            orders.append(tuple(prefix))
            return
        connected = [t for t in remaining
                     if any(u in adjacency[t] for u in prefix)]
        if not connected:
            raise PlanError(
                f"join graph is disconnected: {remaining} cannot join "
                f"{prefix} without a cross product")
        for t in connected:
            extend(prefix + [t], [r for r in remaining if r != t])

    for first in tables:
        extend([first], [t for t in tables if t != first])
    return orders


@dataclass
class _ScanInfo:
    """Access-path alternatives for one base table."""

    table: str
    columns: List[str]
    conjuncts: List[Expr]
    base_rows: float
    rows: float            # estimated rows after all pushed conjuncts
    row_bytes: float
    paths: Dict[str, float] = field(default_factory=dict)  # op → total ns
    index_scan: Optional[IndexScan] = None
    index_pos: int = -1    # which conjunct the index consumes
    index_matches: float = 0.0
    index_pages: int = 0


@dataclass(frozen=True)
class _JoinPrefix:
    """Best-known left-deep plan for one subset of the tables."""

    order: Tuple[str, ...]
    steps: Tuple[JoinStep, ...]
    rows: float
    cost: float


@dataclass
class _CostContext:
    """Everything the enumerator needs, bundled once per statement."""

    estimator: CardinalityEstimator
    model: CostModel
    edges: List[Tuple[str, str, str, str]]
    scans: Dict[str, _ScanInfo]
    #: residual WHERE conjuncts with the tables each one references
    residual: List[Tuple[Expr, FrozenSet[str]]]
    #: counter-free cache hierarchy for join memory costing (optional)
    cache: Optional[object] = None


def _collect_scan_info(statement: SelectStatement, database: Database,
                       per_table_columns: Dict[str, Set[str]],
                       pushed: Dict[str, List[Expr]],
                       estimator: CardinalityEstimator, model: CostModel,
                       indexes: Optional[IndexCatalog]
                       ) -> Dict[str, _ScanInfo]:
    scans: Dict[str, _ScanInfo] = {}
    for table in statement.tables:
        columns = sorted(per_table_columns[table]) \
            or [database.table(table).column_names[0]]
        conjuncts = list(pushed[table])
        base = estimator.base_rows(table)
        rows = sanitize_estimate(estimator.scan_rows(table, conjuncts),
                                 fallback=base)
        row_bytes = estimator.row_bytes(table)
        info = _ScanInfo(table=table, columns=columns,
                         conjuncts=conjuncts, base_rows=base, rows=rows,
                         row_bytes=row_bytes)
        seq = model.operator_ns("SeqScan", base, base,
                                bytes_touched=base * row_bytes)
        if conjuncts:
            seq += model.operator_ns("Filter", base, rows)
        info.paths["seq"] = seq
        if indexes is not None:
            for i, conjunct in enumerate(conjuncts):
                # max_selectivity=1.0: candidate generation is the cost
                # model's job now; unselective index scans simply lose.
                candidate = try_index_scan(database, indexes, table,
                                           conjunct, columns,
                                           max_selectivity=1.0)
                if candidate is None:
                    continue
                matched = candidate.index.lookup(candidate.key)
                pages = candidate.index.pages_for_rows(matched)
                cost = model.operator_ns(
                    "IndexScan", float(matched.size), float(matched.size),
                    bytes_touched=float(len(pages)) * PAGE_SIZE_BYTES)
                rest = conjuncts[:i] + conjuncts[i + 1:]
                if rest:
                    cost += model.operator_ns(
                        "Filter", float(matched.size),
                        float(matched.size)
                        * estimator.selectivity(table, rest))
                info.index_scan = candidate
                info.index_pos = i
                info.index_matches = float(matched.size)
                info.index_pages = len(pages)
                info.paths["index"] = cost
                break
        scans[table] = info
    return scans


def _key_ndvs(ctx: _CostContext, prefix: _JoinPrefix, table: str
              ) -> List[Tuple[str, str, float, float]]:
    """Join-key pairs linking *table* to the prefix: ``(left_key,
    right_key, ndv_left, ndv_right)`` per edge, NDVs capped by each
    side's current cardinality."""
    joined = set(prefix.order)
    pairs: List[Tuple[str, str, float, float]] = []
    rows_right = ctx.scans[table].rows
    for table_a, col_a, table_b, col_b in ctx.edges:
        if table_a in joined and table_b == table:
            owner, left_key, right_key = table_a, col_a, col_b
        elif table_b in joined and table_a == table:
            owner, left_key, right_key = table_b, col_b, col_a
        else:
            continue
        ndv_left = min(ctx.estimator.ndv(owner, left_key),
                       ctx.scans[owner].rows, prefix.rows)
        ndv_right = min(ctx.estimator.ndv(table, right_key), rows_right)
        pairs.append((left_key, right_key,
                      max(1.0, ndv_left), max(1.0, ndv_right)))
    return pairs


def _newly_available(ctx: _CostContext, before: Set[str],
                     after: Set[str]) -> List[Expr]:
    return [conjunct for conjunct, owners in ctx.residual
            if owners <= after and not owners <= before]


def _extend(ctx: _CostContext, prefix: _JoinPrefix, table: str
            ) -> Optional[_JoinPrefix]:
    """Join *table* onto *prefix*; None when no edge connects them."""
    pairs = _key_ndvs(ctx, prefix, table)
    if not pairs:
        return None
    info = ctx.scans[table]
    rows_out = prefix.rows * info.rows
    for __, __r, ndv_left, ndv_right in pairs:
        rows_out /= max(ndv_left, ndv_right)
    # An observed cardinality for exactly this base-table set
    # (q-error feedback) overrides the independence-based estimate.
    observed = ctx.estimator.join_observed(set(prefix.order) | {table})
    if observed is not None:
        rows_out = observed
    rows_out = sanitize_estimate(rows_out)
    step = JoinStep(table=table,
                    left_keys=tuple(k for k, *__ in pairs),
                    right_keys=tuple(r for __, r, *__k in pairs),
                    rows_left=prefix.rows, rows_right=info.rows,
                    rows_out=rows_out)
    step_cost = min(join_operator_cost(ctx.model, op, step,
                                       cache=ctx.cache)
                    for op in JOIN_OPERATORS)
    cost = prefix.cost + min(info.paths.values()) + step_cost
    before, after = set(prefix.order), set(prefix.order) | {table}
    rows = rows_out
    for conjunct in _newly_available(ctx, before, after):
        filtered = rows * estimate_selectivity(conjunct)
        cost += ctx.model.operator_ns("Filter", rows, filtered)
        rows = filtered
    return _JoinPrefix(order=prefix.order + (table,),
                       steps=prefix.steps + (step,),
                       rows=sanitize_estimate(rows),
                       cost=sanitize_estimate(cost, fallback=prefix.cost))


def _start_prefix(ctx: _CostContext, table: str) -> _JoinPrefix:
    info = ctx.scans[table]
    rows, cost = info.rows, min(info.paths.values())
    for conjunct in _newly_available(ctx, set(), {table}):
        filtered = rows * estimate_selectivity(conjunct)
        cost += ctx.model.operator_ns("Filter", rows, filtered)
        rows = filtered
    return _JoinPrefix(order=(table,), steps=(), rows=rows, cost=cost)


def _dp_join_order(ctx: _CostContext, tables: Sequence[str],
                   starts: Sequence[str]) -> Tuple[_JoinPrefix, int]:
    """Exact left-deep dynamic programming (Selinger): best plan per
    table subset, extended one table at a time.  Only *starts* may
    anchor an order (tables with JOIN_OP/BUILD hints must be introduced
    by a join step for their hint to bind)."""
    best: Dict[FrozenSet[str], _JoinPrefix] = {
        frozenset([t]): _start_prefix(ctx, t) for t in starts}
    considered = len(starts)
    for size in range(2, len(tables) + 1):
        for subset in itertools.combinations(tables, size):
            champion: Optional[_JoinPrefix] = None
            for table in subset:
                previous = best.get(frozenset(subset) - {table})
                if previous is None:
                    continue
                candidate = _extend(ctx, previous, table)
                if candidate is None:
                    continue
                considered += 1
                if champion is None or candidate.cost < champion.cost:
                    champion = candidate
            if champion is not None:
                best[frozenset(subset)] = champion
    final = best.get(frozenset(tables))
    if final is None:
        raise PlanError(
            f"join graph is disconnected across {list(tables)}; add "
            f"join conditions linking all tables")
    return final, considered


def _greedy_join_order(ctx: _CostContext, tables: Sequence[str],
                       starts: Sequence[str]) -> Tuple[_JoinPrefix, int]:
    """Beyond :data:`MAX_DP_TABLES`: start from the smallest filtered
    table, repeatedly add the cheapest connected extension."""
    start = min(starts, key=lambda t: ctx.scans[t].rows)
    prefix = _start_prefix(ctx, start)
    remaining = [t for t in tables if t != start]
    considered = 1
    while remaining:
        champion: Optional[_JoinPrefix] = None
        champion_table: Optional[str] = None
        for table in remaining:
            candidate = _extend(ctx, prefix, table)
            if candidate is None:
                continue
            considered += 1
            if champion is None or candidate.cost < champion.cost:
                champion, champion_table = candidate, table
        if champion is None:
            raise PlanError(
                f"join graph is disconnected: {remaining} cannot join "
                f"{list(prefix.order)} without a cross product")
        prefix = champion
        remaining.remove(champion_table)
    return prefix, considered


def _hinted_join_order(ctx: _CostContext, tables: Sequence[str],
                       order: Tuple[str, ...]
                       ) -> Tuple[_JoinPrefix, int]:
    if sorted(order) != sorted(tables):
        raise PlanError(
            f"JOIN_ORDER hint must list every statement table exactly "
            f"once; hint {list(order)} vs tables {list(tables)}")
    prefix = _start_prefix(ctx, order[0])
    for table in order[1:]:
        extended = _extend(ctx, prefix, table)
        if extended is None:
            raise PlanError(
                f"JOIN_ORDER hint {list(order)} requires a cross "
                f"product at {table!r}; hinted orders must stay "
                f"connected")
        prefix = extended
    return prefix, 1


def _annotate(node: PlanNode, rows: float, own_cost_ns: float) -> PlanNode:
    """Stamp optimizer estimates: row count plus cumulative subtree
    cost (this operator + all children)."""
    node.est_rows = sanitize_estimate(rows)
    node.est_cost_ns = sanitize_estimate(
        own_cost_ns + sum(child.est_cost_ns or 0.0
                          for child in node.children))
    return node


def _plan_cost_based(statement: SelectStatement, database: Database,
                     options: PlannerOptions,
                     indexes: Optional[IndexCatalog],
                     stats: Optional[StatisticsCatalog],
                     cost_model: Optional[CostModel],
                     cache=None) -> PlanNode:
    """The v2 planner: enumerate join orders, select physical operators
    through the physops chain, assemble an annotated plan."""
    model = cost_model if cost_model is not None else DEFAULT_COST_MODEL
    estimator = CardinalityEstimator(database, stats)
    hints = statement.hints
    tables = statement.tables

    ownership: Dict[str, str] = {}
    for column in _referenced_columns(statement):
        owner, __ = database.resolve_column(column, tables)
        ownership[column] = owner
    per_table_columns: Dict[str, Set[str]] = {t: set() for t in tables}
    for column, owner in ownership.items():
        per_table_columns[owner].add(column)

    edges = _join_edges(statement, database)
    for table_a, col_a, table_b, col_b in edges:
        per_table_columns[table_a].add(col_a)
        per_table_columns[table_b].add(col_b)

    # Pushdown is always on in the cost-based planner; only the split
    # between single-table (pushed) and multi-table (residual) matters.
    pushed: Dict[str, List[Expr]] = {t: [] for t in tables}
    residual: List[Tuple[Expr, FrozenSet[str]]] = []
    if statement.where is not None:
        for conjunct in split_conjuncts(statement.where):
            owners = frozenset(ownership[c] for c in conjunct.columns())
            if len(owners) == 1:
                pushed[next(iter(owners))].append(conjunct)
            else:
                residual.append((conjunct, owners))

    scans = _collect_scan_info(statement, database, per_table_columns,
                               pushed, estimator, model, indexes)
    ctx = _CostContext(estimator=estimator, model=model, edges=edges,
                       scans=scans, residual=residual, cache=cache)

    # -- join-order enumeration -------------------------------------------
    # Tables carrying JOIN_OP/BUILD hints must be *introduced* by a join
    # step (the first table of a left-deep order has no join operator),
    # so keep them off the anchor position whenever possible.
    hinted_joins = ({t for t, __ in hints.join_ops}
                    | {t for t, __ in hints.build_sides})
    starts = [t for t in tables if t not in hinted_joins] or list(tables)
    if len(tables) == 1:
        prefix, considered, method = _start_prefix(ctx, tables[0]), 1, "single"
    elif hints.join_order:
        prefix, considered = _hinted_join_order(ctx, tables,
                                                hints.join_order)
        method = "hinted"
    elif len(tables) <= MAX_DP_TABLES:
        prefix, considered = _dp_join_order(ctx, tables, starts)
        method = "dp"
    else:
        prefix, considered = _greedy_join_order(ctx, tables, starts)
        method = "greedy"

    # -- physical-operator selection (chainable, PostBOUND-style) ---------
    selection = CostBasedOperatorSelection()
    if not hints.is_empty:
        selection.chain_with(HintOperatorSelection(hints))
    op_context = OperatorSelectionContext(
        steps=prefix.steps,
        scan_costs={t: dict(scans[t].paths) for t in tables},
        cost_model=model,
        cache=cache)
    assignment = selection.select_physical_operators(op_context)

    plan = _assemble_cost_plan(statement, ctx, prefix, assignment,
                               ownership)
    plan.optimizer_info = {
        "method": method,
        "plans_considered": considered,
        "join_order": prefix.order,
        "scan_ops": dict(assignment.scan_ops),
        "join_ops": dict(assignment.join_ops),
        "build_sides": dict(assignment.build_sides),
        "est_rows": plan.est_rows,
        "est_cost_ns": plan.est_cost_ns,
    }
    return plan


def _assemble_cost_plan(statement: SelectStatement, ctx: _CostContext,
                        prefix: _JoinPrefix,
                        assignment: PhysicalOperatorAssignment,
                        ownership: Dict[str, str]) -> PlanNode:
    model = ctx.model

    def scan_node(table: str) -> PlanNode:
        info = ctx.scans[table]
        path = assignment.scan_ops.get(table, "seq")
        conjuncts = list(info.conjuncts)
        if path == "index" and info.index_scan is not None:
            node = _annotate(
                info.index_scan, info.index_matches,
                model.operator_ns(
                    "IndexScan", info.index_matches, info.index_matches,
                    bytes_touched=float(info.index_pages)
                    * PAGE_SIZE_BYTES))
            del conjuncts[info.index_pos]
            rows_in = info.index_matches
        else:
            node = _annotate(
                SeqScan(table, columns=info.columns), info.base_rows,
                model.operator_ns(
                    "SeqScan", info.base_rows, info.base_rows,
                    bytes_touched=info.base_rows * info.row_bytes))
            rows_in = info.base_rows
        if conjuncts:
            predicate = conjoin(conjuncts)
            if isinstance(node, SeqScan):
                node.prune_for = predicate
            node = _annotate(Filter(node, predicate), info.rows,
                             model.operator_ns("Filter", rows_in,
                                               info.rows))
        return node

    def apply_residual(node: PlanNode, before: Set[str],
                       after: Set[str]) -> PlanNode:
        conjuncts = _newly_available(ctx, before, after)
        if not conjuncts:
            return node
        rows_in = node.est_rows if node.est_rows is not None else 0.0
        rows_out = rows_in
        for conjunct in conjuncts:
            rows_out *= estimate_selectivity(conjunct)
        return _annotate(Filter(node, conjoin(conjuncts)), rows_out,
                         model.operator_ns("Filter", rows_in, rows_out))

    plan = apply_residual(scan_node(prefix.order[0]), set(),
                          {prefix.order[0]})
    joined: Set[str] = {prefix.order[0]}
    for step in prefix.steps:
        right = scan_node(step.table)
        operator = assignment.join_ops.get(step.table, "hash")
        if operator == "merge":
            if len(step.left_keys) != 1:
                raise PlanError(
                    f"merge join on {step.table!r} needs exactly one "
                    f"join key, got {list(step.left_keys)}")
            left_key, right_key = step.left_keys[0], step.right_keys[0]
            # The executor's MergeJoin demands sorted inputs: insert
            # Sort enforcers (their cost was part of the merge price).
            sorted_left = _annotate(
                Sort(plan, [(left_key, True)]), step.rows_left,
                model.operator_ns("Sort", step.rows_left, step.rows_left))
            sorted_right = _annotate(
                Sort(right, [(right_key, True)]), step.rows_right,
                model.operator_ns("Sort", step.rows_right,
                                  step.rows_right))
            node: PlanNode = MergeJoin(sorted_left, sorted_right,
                                       left_key, right_key)
            own = model.operator_ns("MergeJoin", step.rows_left,
                                    step.rows_out, step.rows_right)
        elif operator == "loop":
            node = NestedLoopJoin(plan, right, list(step.left_keys),
                                  list(step.right_keys))
            own = model.operator_ns("NestedLoopJoin", step.rows_left,
                                    step.rows_out, step.rows_right)
        elif operator == "radix":
            node = RadixHashJoin(plan, right, list(step.left_keys),
                                 list(step.right_keys))
            side = assignment.build_sides.get(step.table)
            if side is not None:
                node.forced_build_side = side
            own = model.operator_ns("RadixHashJoin", step.rows_left,
                                    step.rows_out, step.rows_right)
        else:
            node = HashJoin(plan, right, list(step.left_keys),
                            list(step.right_keys))
            side = assignment.build_sides.get(step.table)
            if side is not None:
                node.forced_build_side = side
            own = model.operator_ns("HashJoin", step.rows_left,
                                    step.rows_out, step.rows_right)
        plan = _annotate(node, step.rows_out, own)
        before = set(joined)
        joined.add(step.table)
        plan = apply_residual(plan, before, joined)

    # -- output stage, annotated bottom-up --------------------------------
    pipeline_base = plan
    out = _plan_output(statement, plan)
    if statement.distinct:
        out = Distinct(out)
    if statement.order_by:
        out = Sort(out, statement.order_by)
    if statement.limit is not None:
        out = Limit(out, statement.limit)

    chain: List[PlanNode] = []
    node = out
    while node is not pipeline_base:
        chain.append(node)
        node = node.children[0]
    for node in reversed(chain):
        child_rows = node.children[0].est_rows or 0.0
        kind = type(node).__name__
        if isinstance(node, Aggregate):
            if node.group_by:
                groups = 1.0
                for key in node.group_by:
                    owner = ownership.get(key)
                    groups *= ctx.estimator.ndv(owner, key) \
                        if owner is not None else max(1.0, child_rows ** 0.5)
                rows = min(max(1.0, child_rows), max(1.0, groups))
            else:
                rows = 1.0
        elif isinstance(node, Limit):
            rows = min(float(node.n), child_rows)
        elif isinstance(node, Filter):
            rows = child_rows * estimate_selectivity(node.predicate)
        elif isinstance(node, Distinct):
            rows = max(1.0, child_rows ** 0.5) if child_rows else 0.0
        else:
            rows = child_rows
        _annotate(node, rows,
                  model.operator_ns(kind, child_rows, rows))
    return out
