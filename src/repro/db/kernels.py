"""Vectorized execution kernels for MiniDB.

This module is the loop-free half of the executor: every per-row Python
loop in :mod:`repro.db.operators` has a NumPy twin here, in the
MonetDB/X100 column-at-a-time style the tutorial's profiling slides
contrast against tuple-at-a-time interpretation.

Kernel inventory
----------------
- :func:`dict_encode` — dictionary-encode one or more key columns into
  dense composite group ids (``np.unique(..., return_inverse=True)``);
- :func:`encode_join_keys` — the same encoding applied jointly to both
  sides of an equi-join, so equal keys get equal codes across sides;
- :func:`join_match` — sort-based equi-join matching emitting
  ``(left_idx, right_idx)`` gather arrays, left-major like the loop
  executor (stable ``np.argsort`` + two ``np.searchsorted`` sweeps);
- :func:`merge_match` — the already-sorted variant (no argsort pass);
- :func:`grouped_reduce` — grouped SUM/MIN/MAX via ``np.argsort`` +
  ``np.add.reduceat`` / ``np.minimum.reduceat`` / ``np.maximum.reduceat``;
- :func:`group_count` / :func:`group_first_index` — grouped COUNT and
  first-occurrence representative rows;
- :func:`first_occurrence_order` — DISTINCT keeping loop-identical
  first-occurrence row order;
- :func:`compile_expr` — expression compilation with a process-wide
  cache keyed by the (frozen, hashable) expression tree.

Selection vectors
-----------------
:class:`SelBatch` wraps a base batch plus a ``sel`` index array: a
filter that keeps 1% of rows produces a 1%-sized ``sel`` instead of
copying every column.  Downstream non-breaking operators compose with
``sel``; pipeline breakers (joins, aggregation, sort, distinct) and the
engine's materialisation phase gather exactly once via
:func:`materialize`.

Every kernel runs under a ``maybe_span(..., category="kernel")`` so
traces and flamegraphs attribute execution time to individual kernels
(and the metrics registry counts ``spans.kernel``).
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.expressions import (
    ARITH_OPS,
    CMP_OPS,
    Arithmetic,
    Between,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Like,
    Literal,
    Not,
)
from repro.errors import PlanError
from repro.obs import maybe_span

__all__ = [
    "SelBatch",
    "compile_expr",
    "dict_encode",
    "encode_join_keys",
    "expression_cache_clear",
    "expression_cache_info",
    "first_occurrence_order",
    "gather",
    "group_count",
    "group_first_index",
    "grouped_reduce",
    "join_match",
    "materialize",
    "merge_match",
    "radix_bits_for",
    "radix_join_match",
    "radix_partition",
    "radix_passes",
    "split_batch",
]


# ---------------------------------------------------------------------------
# Selection vectors
# ---------------------------------------------------------------------------

class SelBatch:
    """A batch with a deferred selection: base columns plus a ``sel``
    index array of the surviving row positions (sorted ascending).

    Behaves enough like a ``Dict[str, np.ndarray]`` for the generic
    plan machinery (``in``, iteration, row counting) while postponing
    the per-column gather until a pipeline breaker calls
    :func:`materialize`.
    """

    __slots__ = ("base", "sel")

    def __init__(self, base: Dict[str, np.ndarray], sel: np.ndarray):
        self.base = base
        self.sel = np.asarray(sel, dtype=np.int64)

    def rows(self) -> int:
        return int(self.sel.size)

    def __contains__(self, name: str) -> bool:
        return name in self.base

    def __iter__(self) -> Iterator[str]:
        return iter(self.base)

    def __len__(self) -> int:
        return len(self.base)

    def column(self, name: str) -> np.ndarray:
        """One column, gathered through the selection vector."""
        try:
            return self.base[name][self.sel]
        except KeyError:
            raise PlanError(
                f"column {name!r} not in batch "
                f"({sorted(self.base)})") from None

    def view(self, names: Sequence[str]) -> Dict[str, np.ndarray]:
        """Gather only *names* (e.g. a predicate's referenced columns)."""
        return {n: self.column(n) for n in names}

    def bytes_used(self) -> int:
        """Selected payload plus the selection vector itself."""
        n = self.rows()
        total = 8 * n  # the sel array
        for arr in self.base.values():
            total += n * (16 if arr.dtype == object else arr.itemsize)
        return total

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"SelBatch({sorted(self.base)}, "
                f"sel={self.rows()}/{len(next(iter(self.base.values()), []))})")


def split_batch(batch) -> Tuple[Dict[str, np.ndarray],
                                Optional[np.ndarray]]:
    """``(base, sel)`` of any batch; ``sel`` is None when materialised."""
    if isinstance(batch, SelBatch):
        return batch.base, batch.sel
    return batch, None


def gather(base: Dict[str, np.ndarray], sel: np.ndarray,
           names: Optional[Sequence[str]] = None) -> Dict[str, np.ndarray]:
    """Materialise *sel* rows of *base* (all columns by default)."""
    if names is None:
        names = list(base)
    with maybe_span("kernel.gather", "kernel",
                    rows=int(sel.size), columns=len(names)):
        return {n: base[n][sel] for n in names}


def materialize(batch):
    """A plain dict batch: gathers once if *batch* carries a selection."""
    if isinstance(batch, SelBatch):
        return gather(batch.base, batch.sel)
    return batch


# ---------------------------------------------------------------------------
# Dictionary encoding and join matching
# ---------------------------------------------------------------------------

def dict_encode(columns: Sequence[np.ndarray]
                ) -> Tuple[np.ndarray, int]:
    """Dense composite codes for equal-length key columns.

    Returns ``(codes, n_codes)`` where ``codes[i]`` identifies the
    composite key of row ``i`` and every id in ``[0, n_codes)`` occurs.
    Ids are assigned in ascending composite-key order (NumPy's sort
    order per column), so grouped output produced from these codes is
    key-sorted — unlike the loop executor's first-occurrence order.
    """
    if not columns:
        raise PlanError("dict_encode needs at least one key column")
    n = len(columns[0])
    with maybe_span("kernel.dict_encode", "kernel",
                    rows=n, keys=len(columns)):
        codes: Optional[np.ndarray] = None
        for col in columns:
            uniques, inverse = np.unique(np.asarray(col),
                                         return_inverse=True)
            inverse = inverse.astype(np.int64, copy=False)
            if codes is None:
                codes = inverse
            else:
                codes = codes * np.int64(len(uniques)) + inverse
                # Re-compact before the mixed-radix product can overflow.
                if len(uniques) and codes.size \
                        and int(codes.max(initial=0)) > 2 ** 61:
                    __, codes = np.unique(codes, return_inverse=True)
                    codes = codes.astype(np.int64, copy=False)
        uniques, compact = np.unique(codes, return_inverse=True)
        return compact.astype(np.int64, copy=False), int(len(uniques))


def encode_join_keys(left_cols: Sequence[np.ndarray],
                     right_cols: Sequence[np.ndarray]
                     ) -> Tuple[np.ndarray, np.ndarray]:
    """Comparable composite codes for the two sides of an equi-join.

    Each key position's left and right columns are concatenated before
    encoding, so a key value present on both sides maps to one code.
    """
    if len(left_cols) != len(right_cols) or not left_cols:
        raise PlanError(
            "join encoding needs equally many (>=1) keys on both sides")
    n_left = len(left_cols[0])
    combined = [np.concatenate([np.asarray(l), np.asarray(r)])
                for l, r in zip(left_cols, right_cols)]
    codes, __ = dict_encode(combined)
    return codes[:n_left], codes[n_left:]


def join_match(left_codes: np.ndarray, right_codes: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
    """All (left, right) index pairs with equal codes, left-major.

    Output order matches the loop executor's hash join exactly: left
    indices ascending, and for one left row its matching right indices
    ascending (the stable argsort keeps equal codes in input order).
    """
    with maybe_span("kernel.join_match", "kernel",
                    left=int(left_codes.size),
                    right=int(right_codes.size)):
        order = np.argsort(right_codes, kind="stable")
        sorted_right = right_codes[order]
        starts = np.searchsorted(sorted_right, left_codes, side="left")
        ends = np.searchsorted(sorted_right, left_codes, side="right")
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        left_idx = np.repeat(np.arange(left_codes.size, dtype=np.int64),
                             counts)
        first = np.cumsum(counts) - counts
        positions = np.repeat(starts - first, counts) \
            + np.arange(total, dtype=np.int64)
        right_idx = order[positions]
        return left_idx, right_idx


def merge_match(left_keys: np.ndarray, right_keys: np.ndarray
                ) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`join_match` for inputs already sorted on their keys.

    Skips the argsort pass: right-side runs are located directly with
    two binary-search sweeps over the sorted right keys.
    """
    with maybe_span("kernel.merge_match", "kernel",
                    left=int(len(left_keys)),
                    right=int(len(right_keys))):
        starts = np.searchsorted(right_keys, left_keys, side="left")
        ends = np.searchsorted(right_keys, left_keys, side="right")
        counts = ends - starts
        total = int(counts.sum())
        if total == 0:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        left_idx = np.repeat(np.arange(len(left_keys), dtype=np.int64),
                             counts)
        first = np.cumsum(counts) - counts
        right_idx = np.repeat(starts - first, counts) \
            + np.arange(total, dtype=np.int64)
        return left_idx, right_idx


# ---------------------------------------------------------------------------
# Radix-partitioned join (Manegold/Boncz/Kersten-style)
# ---------------------------------------------------------------------------

#: Maximum useful fan-out per partitioning pass: one pass splits on at
#: most this many bits (the classic TLB/cache-line bound on scatter
#: targets); deeper splits take another pass over the data.
RADIX_BITS_PER_PASS = 8

#: Hard cap on total radix bits — beyond this the per-partition
#: bookkeeping dwarfs any locality win at the sizes MiniDB simulates.
MAX_RADIX_BITS = 14

#: Approximate hash-table bytes per build row (slot + entry), matching
#: the operator's ``aux_bytes`` accounting.
HASH_TABLE_BYTES_PER_ROW = 48


def radix_passes(n_bits: int) -> int:
    """Partitioning passes needed to split on ``n_bits`` bits."""
    if n_bits <= 0:
        return 0
    return -(-n_bits // RADIX_BITS_PER_PASS)


def radix_bits_for(n_build: int, cache_bytes: int,
                   bytes_per_row: int = HASH_TABLE_BYTES_PER_ROW) -> int:
    """Fewest radix bits making each partition's hash table fit cache."""
    if n_build <= 0 or cache_bytes <= 0:
        return 0
    bits = 0
    while bits < MAX_RADIX_BITS and \
            (n_build * bytes_per_row) >> bits > cache_bytes:
        bits += 1
    return bits


def radix_partition(codes: np.ndarray, n_bits: int
                    ) -> Tuple[np.ndarray, np.ndarray]:
    """Partition rows on the low ``n_bits`` bits of their key codes.

    Returns ``(order, offsets)``: ``order`` lists row indices grouped by
    partition (stable within each partition), ``offsets`` has
    ``2**n_bits + 1`` entries with partition *p* occupying
    ``order[offsets[p]:offsets[p + 1]]``.
    """
    if n_bits < 0 or n_bits > MAX_RADIX_BITS:
        raise PlanError(
            f"radix bits must be in [0, {MAX_RADIX_BITS}], got {n_bits}")
    n_partitions = 1 << n_bits
    with maybe_span("kernel.radix_partition", "kernel",
                    rows=int(codes.size), bits=n_bits,
                    passes=radix_passes(n_bits)):
        partitions = codes & np.int64(n_partitions - 1)
        order = np.argsort(partitions, kind="stable").astype(np.int64)
        counts = np.bincount(partitions, minlength=n_partitions)
        offsets = np.zeros(n_partitions + 1, dtype=np.int64)
        np.cumsum(counts, out=offsets[1:])
        return order, offsets


def radix_join_match(left_codes: np.ndarray, right_codes: np.ndarray,
                     n_bits: int) -> Tuple[np.ndarray, np.ndarray]:
    """:func:`join_match`, radix-partitioned on the low ``n_bits`` bits.

    Both sides are partitioned so equal codes land in the same
    partition; each partition is joined independently (its hash table is
    what fits in cache) and the pair list is restored to the canonical
    left-major order, making the output byte-identical to
    :func:`join_match`.
    """
    if n_bits <= 0:
        return join_match(left_codes, right_codes)
    with maybe_span("kernel.radix_join_match", "kernel",
                    left=int(left_codes.size),
                    right=int(right_codes.size), bits=n_bits):
        left_order, left_offsets = radix_partition(left_codes, n_bits)
        right_order, right_offsets = radix_partition(right_codes, n_bits)
        left_parts: List[np.ndarray] = []
        right_parts: List[np.ndarray] = []
        for p in range(1 << n_bits):
            ls = left_order[left_offsets[p]:left_offsets[p + 1]]
            rs = right_order[right_offsets[p]:right_offsets[p + 1]]
            if ls.size == 0 or rs.size == 0:
                continue  # empty partition on either side: no matches
            li, ri = join_match(left_codes[ls], right_codes[rs])
            left_parts.append(ls[li])
            right_parts.append(rs[ri])
        if not left_parts:
            empty = np.empty(0, dtype=np.int64)
            return empty, empty.copy()
        li = np.concatenate(left_parts)
        ri = np.concatenate(right_parts)
        order = np.lexsort((ri, li))
        return li[order], ri[order]


# ---------------------------------------------------------------------------
# Grouped aggregation
# ---------------------------------------------------------------------------

_REDUCE_UFUNCS = {"sum": np.add, "min": np.minimum, "max": np.maximum}


def grouped_reduce(values: np.ndarray, group_ids: np.ndarray,
                   n_groups: int, op: str) -> np.ndarray:
    """Per-group reduction via stable argsort + ``ufunc.reduceat``.

    ``group_ids`` must be dense (:func:`dict_encode` output): every id
    in ``[0, n_groups)`` occurs at least once.
    """
    try:
        ufunc = _REDUCE_UFUNCS[op]
    except KeyError:
        raise PlanError(
            f"unknown grouped reduction {op!r}; "
            f"known: {sorted(_REDUCE_UFUNCS)}") from None
    with maybe_span("kernel.grouped_reduce", "kernel",
                    rows=int(len(values)), groups=n_groups, op=op):
        if n_groups == 0:
            return np.zeros(0, dtype=np.float64)
        order = np.argsort(group_ids, kind="stable")
        sorted_values = np.asarray(values, dtype=np.float64)[order]
        sorted_ids = np.asarray(group_ids)[order]
        starts = np.concatenate(
            ([0], np.flatnonzero(np.diff(sorted_ids)) + 1))
        if len(starts) != n_groups:
            raise PlanError(
                f"group ids are not dense: {len(starts)} distinct ids "
                f"for {n_groups} declared groups")
        return ufunc.reduceat(sorted_values, starts)


def group_count(group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    """Per-group row counts (COUNT(*)) as int64."""
    with maybe_span("kernel.group_count", "kernel",
                    rows=int(group_ids.size), groups=n_groups):
        return np.bincount(group_ids,
                           minlength=n_groups).astype(np.int64)


def group_first_index(group_ids: np.ndarray, n_groups: int) -> np.ndarray:
    """The first input row index of each group (key materialisation)."""
    with maybe_span("kernel.group_first_index", "kernel",
                    rows=int(group_ids.size), groups=n_groups):
        first = np.full(n_groups, group_ids.size, dtype=np.int64)
        np.minimum.at(first, group_ids,
                      np.arange(group_ids.size, dtype=np.int64))
        return first


def first_occurrence_order(columns: Sequence[np.ndarray]
                           ) -> np.ndarray:
    """Row indices of the first occurrence of each distinct row,
    ascending — the loop executor's DISTINCT order, loop-free."""
    n = len(columns[0]) if columns else 0
    with maybe_span("kernel.first_occurrence", "kernel", rows=n):
        if n == 0:
            return np.empty(0, dtype=np.int64)
        codes, n_codes = dict_encode(columns)
        return np.sort(group_first_index(codes, n_codes))


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------

CompiledExpr = Callable[[Dict[str, np.ndarray]], np.ndarray]

_EXPR_CACHE: Dict[Expr, CompiledExpr] = {}
_expr_cache_hits = 0
_expr_cache_misses = 0


def expression_cache_info() -> Dict[str, int]:
    """Hit/miss/size counters of the process-wide expression cache."""
    return {"hits": _expr_cache_hits, "misses": _expr_cache_misses,
            "size": len(_EXPR_CACHE)}


def expression_cache_clear() -> None:
    """Drop all compiled expressions and reset the counters (tests)."""
    global _expr_cache_hits, _expr_cache_misses
    _EXPR_CACHE.clear()
    _expr_cache_hits = 0
    _expr_cache_misses = 0


def compile_expr(expr: Expr) -> CompiledExpr:
    """A reusable ``batch -> ndarray`` evaluator for *expr*.

    Compilation resolves operator dispatch, literal dtypes and LIKE
    regexes once per distinct expression tree; repeated queries reuse
    the cached closure (expressions are frozen dataclasses, hence
    hashable and safe cache keys).  Semantics mirror
    :meth:`~repro.db.expressions.Expr.evaluate` exactly.
    """
    global _expr_cache_hits, _expr_cache_misses
    try:
        cached = _EXPR_CACHE.get(expr)
    except TypeError:  # unhashable literal payload: compile uncached
        return _build_compiled(expr)
    if cached is not None:
        _expr_cache_hits += 1
        return cached
    _expr_cache_misses += 1
    compiled = _build_compiled(expr)
    _EXPR_CACHE[expr] = compiled
    return compiled


def _build_compiled(expr: Expr) -> CompiledExpr:
    if isinstance(expr, ColumnRef):
        name = expr.name

        def read_column(batch, name=name):
            try:
                return batch[name]
            except KeyError:
                raise PlanError(
                    f"column {name!r} not in batch "
                    f"({sorted(batch)})") from None
        return read_column
    if isinstance(expr, Literal):
        return expr.evaluate  # already cheap; dtype resolved inside
    if isinstance(expr, Arithmetic):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        if expr.op == "/":
            def divide(batch, left=left, right=right):
                lv = left(batch)
                rv = right(batch)
                return np.divide(lv, rv,
                                 out=np.zeros(len(lv), dtype=np.float64),
                                 where=np.asarray(rv) != 0,
                                 casting="unsafe")
            return divide
        ufunc = ARITH_OPS[expr.op]
        return lambda batch: ufunc(left(batch), right(batch))
    if isinstance(expr, Comparison):
        left = compile_expr(expr.left)
        right = compile_expr(expr.right)
        ufunc = CMP_OPS[expr.op]
        return lambda batch: ufunc(left(batch), right(batch))
    if isinstance(expr, BoolOp):
        parts = [compile_expr(p) for p in expr.parts]
        combine = np.logical_and if expr.op == "and" else np.logical_or

        def boolean(batch, parts=parts, combine=combine):
            out = np.asarray(parts[0](batch), dtype=bool)
            for part in parts[1:]:
                out = combine(out, np.asarray(part(batch), dtype=bool))
            return out
        return boolean
    if isinstance(expr, Not):
        child = compile_expr(expr.child)
        return lambda batch: np.logical_not(
            np.asarray(child(batch), dtype=bool))
    if isinstance(expr, Between):
        value = compile_expr(expr.expr)
        low = compile_expr(expr.low)
        high = compile_expr(expr.high)

        def between(batch, value=value, low=low, high=high):
            v = value(batch)
            return np.logical_and(v >= low(batch), v <= high(batch))
        return between
    if isinstance(expr, InList):
        value = compile_expr(expr.expr)
        values = expr.values

        def in_list(batch, value=value, values=values):
            v = value(batch)
            out = np.zeros(len(v), dtype=bool)
            for candidate in values:
                out |= (v == candidate)
            return out
        return in_list
    if isinstance(expr, Like):
        value = compile_expr(expr.expr)
        pattern = expr._regex()  # compiled once, reused per batch

        def like(batch, value=value, pattern=pattern):
            v = value(batch)
            out = np.empty(len(v), dtype=bool)
            for i, s in enumerate(v):
                out[i] = bool(pattern.match(s))
            return out
        return like
    # Unknown node types fall back to interpreted evaluation.
    return expr.evaluate


# ---------------------------------------------------------------------------
# Cost accounting helpers shared by the vectorized operator paths
# ---------------------------------------------------------------------------

def charge_gather(ctx, n_rows: int, n_columns: int) -> None:
    """Charge the simulated cost of materialising a selection."""
    if n_rows and n_columns:
        ctx.charge_cpu("scan",
                       ctx.costs.gather_ns_per_value * n_rows * n_columns)


def materialize_charged(ctx, batch):
    """:func:`materialize` plus its simulated gather cost."""
    if isinstance(batch, SelBatch):
        charge_gather(ctx, batch.rows(), len(batch.base))
        return gather(batch.base, batch.sel)
    return batch


def normalize_keys(columns: Sequence[np.ndarray]) -> List[np.ndarray]:
    """Key columns as ndarrays (defensive copy-free passthrough)."""
    return [np.asarray(c) for c in columns]
