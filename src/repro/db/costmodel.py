"""Calibrated per-operator cost model for the cost-based optimizer.

Each physical operator kind gets an :class:`OperatorCost` — a startup
cost, a time-per-work-unit slope, and a time-per-byte slope (the
palimpzest ``estimateCost()`` shape: startup + time-per-row +
bytes-touched).  A plan's cost is the sum over its nodes of::

    startup_ns + per_row_ns * work_units + per_byte_ns * bytes_touched

where ``work_units`` is the operator's characteristic work measure
(linear rows for scans and hash joins, ``n*log2(n)`` for sorts,
``n_left*n_right`` for nested loops — see :func:`work_units`).

Two ways to obtain a model:

- :data:`DEFAULT_COST_MODEL` — derived analytically from the engine's
  :class:`~repro.db.context.CostParameters` ns-constants;
- :func:`calibrate_cost_model` — the paper's *measure, then model*
  loop: runs a seeded training workload of micro-benchmarks under a
  :class:`~repro.obs.Tracer`, harvests per-operator span timings and
  hardware-counter deltas (``hw.io_reads``), and least-squares fits the
  coefficients per operator kind.

The cardinality side lives in :class:`CardinalityEstimator`, which
consumes the :class:`~repro.db.statistics.StatisticsCatalog`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.db.disk import PAGE_SIZE_BYTES
from repro.db.expressions import Expr
from repro.db.statistics import (
    StatisticsCatalog,
    combine_conjuncts,
    join_signature,
    predicate_selectivity,
    scan_signature,
)
from repro.db.storage import Database
from repro.errors import PlanError

#: Operator kinds the model knows; anything else costs per-row at the
#: Filter rate (a safe linear default).
KNOWN_KINDS = (
    "SeqScan", "IndexScan", "Filter", "Project", "HashJoin",
    "RadixHashJoin", "MergeJoin", "NestedLoopJoin", "Aggregate",
    "Distinct", "Sort", "Limit",
)


@dataclass(frozen=True)
class OperatorCost:
    """Cost coefficients for one operator kind (nanoseconds)."""

    startup_ns: float = 0.0
    per_row_ns: float = 0.0
    per_byte_ns: float = 0.0

    def total_ns(self, work: float, n_bytes: float = 0.0) -> float:
        return (self.startup_ns + self.per_row_ns * max(0.0, work)
                + self.per_byte_ns * max(0.0, n_bytes))


def work_units(kind: str, rows_in: float, rows_out: float,
               rows_in_right: float = 0.0) -> float:
    """The characteristic work measure of one operator kind.

    For joins ``rows_in`` is the left input and ``rows_in_right`` the
    right; for everything else ``rows_in_right`` is ignored.
    """
    rows_in = max(0.0, rows_in)
    rows_out = max(0.0, rows_out)
    right = max(0.0, rows_in_right)
    if kind == "NestedLoopJoin":
        return rows_in * right
    if kind in ("HashJoin", "RadixHashJoin", "MergeJoin"):
        return rows_in + right + rows_out
    if kind == "Sort":
        return rows_in * math.log2(rows_in) if rows_in > 1 else rows_in
    if kind in ("SeqScan", "IndexScan", "Limit"):
        return rows_out
    # Filter / Project / Aggregate / Distinct: linear in the input.
    return rows_in


@dataclass(frozen=True)
class CostModel:
    """Per-operator-kind coefficients, hashable for EngineConfig.

    ``coefficients`` is a sorted tuple of ``(kind, OperatorCost)`` so
    the model can live on a frozen config and key a plan cache.
    """

    coefficients: Tuple[Tuple[str, OperatorCost], ...]
    #: Where the coefficients came from: "analytic" or "calibrated".
    source: str = "analytic"

    def cost_for(self, kind: str) -> OperatorCost:
        for name, cost in self.coefficients:
            if name == kind:
                return cost
        return self.cost_for("Filter")

    def operator_ns(self, kind: str, rows_in: float, rows_out: float,
                    rows_in_right: float = 0.0,
                    bytes_touched: float = 0.0) -> float:
        """Estimated nanoseconds one operator invocation costs."""
        work = work_units(kind, rows_in, rows_out, rows_in_right)
        return self.cost_for(kind).total_ns(work, bytes_touched)

    def describe(self) -> str:
        lines = [f"cost model ({self.source}):"]
        for kind, cost in self.coefficients:
            lines.append(
                f"  {kind:<16} startup={cost.startup_ns:>10.0f}ns "
                f"per_row={cost.per_row_ns:>8.2f}ns "
                f"per_byte={cost.per_byte_ns:>6.3f}ns")
        return "\n".join(lines)


def _analytic_coefficients() -> Tuple[Tuple[str, OperatorCost], ...]:
    """Defaults derived from CostParameters' loop-executor constants."""
    from repro.db.context import CostParameters
    c = CostParameters()
    return tuple(sorted({
        # Scans pay per value materialised plus per byte pulled through
        # the buffer pool (column count enters via bytes_touched).
        "SeqScan": OperatorCost(2_000.0, c.scan_ns_per_value, 1.5),
        "IndexScan": OperatorCost(5_000.0, c.hash_probe_ns_per_row, 4.0),
        "Filter": OperatorCost(1_000.0, c.filter_ns_per_value, 0.0),
        "Project": OperatorCost(1_000.0, c.project_ns_per_value, 0.0),
        "HashJoin": OperatorCost(
            4_000.0, (c.hash_build_ns_per_row
                      + c.hash_probe_ns_per_row) / 2.0, 0.0),
        # Same build/probe work as HashJoin: the partitioning overhead
        # is added separately (physops._radix_extra_ns) because it
        # depends on the cache geometry, not on the row counts alone.
        "RadixHashJoin": OperatorCost(
            4_000.0, (c.hash_build_ns_per_row
                      + c.hash_probe_ns_per_row) / 2.0, 0.0),
        "MergeJoin": OperatorCost(2_000.0, c.filter_ns_per_value, 0.0),
        "NestedLoopJoin": OperatorCost(
            1_000.0, c.filter_ns_per_value, 0.0),
        "Aggregate": OperatorCost(
            2_000.0, c.group_ns_per_row + c.agg_ns_per_value, 0.0),
        "Distinct": OperatorCost(2_000.0, c.group_ns_per_row, 0.0),
        "Sort": OperatorCost(2_000.0, c.sort_ns_per_compare, 0.0),
        "Limit": OperatorCost(500.0, 1.0, 0.0),
    }.items()))


DEFAULT_COST_MODEL = CostModel(coefficients=_analytic_coefficients(),
                               source="analytic")


# ---------------------------------------------------------------------------
# Calibration: fit coefficients from traced operator spans
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class CalibrationSample:
    """One observed operator execution, harvested from a trace span."""

    kind: str
    rows_in: float
    rows_out: float
    rows_in_right: float
    self_ns: float
    bytes_touched: float


def samples_from_trace(trace) -> List[CalibrationSample]:
    """Extract per-operator samples from a finished Trace.

    Operator spans carry ``kind``/``rows``/``self_ms`` attributes (set
    in :meth:`repro.db.plan.PlanNode.execute`); input rows come from the
    child operator spans, and bytes touched from the span's absorbed
    ``hw.io_reads`` counter delta (pages → bytes).

    Pages are attributed *exclusively*: the span's inclusive delta
    minus each direct child **operator** span's inclusive delta.
    ``self_ms`` is self time, so billing every nested operator's pages
    to all of its ancestors (the raw inclusive number) would smear one
    scan's cold I/O across the whole pipeline above it and inflate
    every fitted per-byte coefficient.  Non-operator descendants
    (buffer/kernel spans) stay with the operator that caused them —
    a scan's pages live on its ``buffer.read_table`` child span.
    """
    samples: List[CalibrationSample] = []
    for span in trace.category_spans("operator"):
        attrs = span.attributes
        if "kind" not in attrs or "rows" not in attrs:
            continue  # span died before stats were attached
        operator_children = [c for c in trace.children(span)
                             if c.category == "operator"]
        children = [c for c in operator_children
                    if "rows" in c.attributes]
        child_rows = [float(c.attributes["rows"]) for c in children]
        rows_out = float(attrs["rows"])
        if child_rows:
            rows_in = child_rows[0]
            rows_right = child_rows[1] if len(child_rows) > 1 else 0.0
        else:
            rows_in, rows_right = rows_out, 0.0
        pages = float(attrs.get("hw.io_reads", 0))
        pages -= sum(float(c.attributes.get("hw.io_reads", 0))
                     for c in operator_children)
        pages = max(0.0, pages)
        samples.append(CalibrationSample(
            kind=str(attrs["kind"]),
            rows_in=rows_in, rows_out=rows_out,
            rows_in_right=rows_right,
            self_ns=float(attrs.get("self_ms", 0.0)) * 1e6,
            bytes_touched=pages * PAGE_SIZE_BYTES))
    return samples


def fit_coefficients(samples: Sequence[CalibrationSample]
                     ) -> Dict[str, OperatorCost]:
    """Least-squares fit of (startup, per_row, per_byte) per kind.

    Kinds with fewer than 3 samples, or whose byte column is degenerate,
    fall back to a reduced fit; negative fitted coefficients clamp to 0
    (a cost model must be monotone in work).
    """
    by_kind: Dict[str, List[CalibrationSample]] = {}
    for sample in samples:
        by_kind.setdefault(sample.kind, []).append(sample)

    fitted: Dict[str, OperatorCost] = {}
    for kind, group in by_kind.items():
        work = np.asarray([work_units(s.kind, s.rows_in, s.rows_out,
                                      s.rows_in_right) for s in group])
        n_bytes = np.asarray([s.bytes_touched for s in group])
        y = np.asarray([s.self_ns for s in group])
        use_bytes = bool(np.ptp(n_bytes) > 0.0) and len(group) >= 4
        if use_bytes:
            # No intercept: cold-IO time is linear in pages read, so it
            # belongs on the per-byte slope, not on a fixed startup that
            # would inflate every hot scan's estimate.
            design = np.column_stack([work, n_bytes])
        else:
            design = np.column_stack([np.ones(len(group)), work])
        if len(group) < design.shape[1] or float(np.ptp(work)) == 0.0:
            # Too few / degenerate samples: a pure slope estimate.
            total_work = float(work.sum())
            slope = float(y.sum()) / total_work if total_work else 0.0
            fitted[kind] = OperatorCost(0.0, slope, 0.0)
            continue
        coef, *__ = np.linalg.lstsq(design, y, rcond=None)
        if use_bytes:
            startup = 0.0
            per_row = max(0.0, float(coef[0]))
            per_byte = max(0.0, float(coef[1]))
        else:
            startup = max(0.0, float(coef[0]))
            per_row = max(0.0, float(coef[1]))
            per_byte = 0.0
        fitted[kind] = OperatorCost(startup, per_row, per_byte)
    return fitted


def training_workload(seed: int = 7, executor: str = "loop"):
    """The seeded training micro-benchmarks calibration runs.

    Sizes and selectivities are spread so each operator kind's design
    matrix has rank: several input sizes, selectivities, group counts
    and join shapes; each query runs cold then hot so the byte column
    varies independently of the row columns.
    """
    from repro.db.engine import EngineConfig
    from repro.workloads.microbench import (
        aggregate_microbenchmark,
        join_microbenchmark,
        select_microbenchmark,
        sort_microbenchmark,
    )
    config = EngineConfig(executor=executor)
    micros = []
    for i, (n, sel) in enumerate([(2_000, 0.01), (5_000, 0.2),
                                  (10_000, 0.5), (20_000, 0.9)]):
        micros.append(select_microbenchmark(n, sel, seed=seed + i,
                                            config=config))
    for i, (n, groups) in enumerate([(2_000, 10), (8_000, 500),
                                     (20_000, 2_000)]):
        micros.append(aggregate_microbenchmark(n, groups, seed=seed + i,
                                               config=config))
    for i, (nl, nr) in enumerate([(2_000, 200), (6_000, 1_000),
                                  (12_000, 400)]):
        micros.append(join_microbenchmark(nl, nr, seed=seed + i,
                                          config=config))
    for i, n in enumerate([2_000, 8_000, 24_000]):
        micros.append(sort_microbenchmark(n, seed=seed + i,
                                          config=config))
    return micros


def calibrate_cost_model(seed: int = 7, executor: str = "loop"
                         ) -> CostModel:
    """Measure → fit → model: calibrate coefficients from traced runs.

    Deterministic for a given seed (all timings come off the engines'
    virtual clocks), so calibration is reproducible run to run.
    """
    from repro.obs import Tracer

    samples: List[CalibrationSample] = []
    for micro in training_workload(seed=seed, executor=executor):
        tracer = Tracer(clock=micro.engine.clock,
                        counters=micro.engine.counters)
        with tracer.activate():
            micro.run()              # cold: pages stream from disk
            micro.engine.make_cold()
            micro.run()              # cold again, different clock offsets
            micro.run()              # hot: zero-byte contrast sample
        samples.extend(samples_from_trace(tracer.trace()))

    fitted = fit_coefficients(samples)
    merged = dict(DEFAULT_COST_MODEL.coefficients)
    merged.update(fitted)
    return CostModel(coefficients=tuple(sorted(merged.items())),
                     source="calibrated")


# ---------------------------------------------------------------------------
# Cardinality estimation
# ---------------------------------------------------------------------------

class CardinalityEstimator:
    """Row-count estimates from the statistics catalogue.

    Falls back to catalogue-free heuristics (actual base-table row
    counts, System R selectivities) when a table was never ANALYZEd —
    the optimizer degrades gracefully rather than refusing to plan.
    """

    def __init__(self, database: Database,
                 stats: Optional[StatisticsCatalog] = None):
        self.database = database
        self.stats = stats

    def _table_stats(self, table: str):
        if self.stats is None:
            return None
        return self.stats.table(table)

    def base_rows(self, table: str) -> float:
        stats = self._table_stats(table)
        if stats is not None:
            return float(stats.n_rows)
        return float(self.database.table(table).n_rows)

    def row_bytes(self, table: str) -> float:
        stats = self._table_stats(table)
        if stats is not None:
            return float(stats.row_bytes)
        t = self.database.table(table)
        return float(t.bytes_used) / max(1, t.n_rows)

    def selectivity(self, table: str,
                    conjuncts: Sequence[Expr]) -> float:
        """Combined selectivity of *conjuncts* over one table, using
        the exponential-backoff independence correction."""
        if not conjuncts:
            return 1.0
        stats = self._table_stats(table)
        factors = [predicate_selectivity(c, stats) for c in conjuncts]
        return combine_conjuncts(factors)

    def scan_rows(self, table: str,
                  conjuncts: Sequence[Expr]) -> float:
        """Estimated rows surviving *conjuncts* over a base table.

        An observed cardinality recorded for exactly this
        table/conjunct shape (q-error feedback,
        :mod:`repro.db.feedback`) overrides the model-based estimate.
        """
        if self.stats is not None and conjuncts:
            hint = self.stats.hint(scan_signature(table, conjuncts))
            if hint is not None:
                return hint
        return self.base_rows(table) * self.selectivity(table, conjuncts)

    def join_observed(self, tables) -> Optional[float]:
        """The observed cardinality for a join over *tables*, if one
        was recorded by a feedback round; ``None`` otherwise."""
        if self.stats is None:
            return None
        return self.stats.hint(join_signature(tables))

    def ndv(self, table: str, column: str) -> float:
        """Distinct values of a column; defaults to the row count (the
        safe unique-key assumption for join estimation)."""
        stats = self._table_stats(table)
        if stats is not None:
            return float(stats.ndv(column))
        t = self.database.table(table)
        if not t.has_column(column):
            raise PlanError(
                f"cannot estimate NDV: {table!r} has no column {column!r}")
        return float(max(1, t.n_rows))

    @staticmethod
    def join_rows(rows_left: float, rows_right: float,
                  ndv_left: float, ndv_right: float) -> float:
        """Classic equi-join estimate: |L|*|R| / max(V(L,a), V(R,b)).

        NDVs are capped at their side's cardinality (a filter cannot
        leave more distinct keys than rows).
        """
        if rows_left <= 0.0 or rows_right <= 0.0:
            return 0.0
        v_left = max(1.0, min(ndv_left, rows_left))
        v_right = max(1.0, min(ndv_right, rows_right))
        return rows_left * rows_right / max(v_left, v_right)
