"""The MiniDB engine facade.

Ties the whole substrate together: parser → optimizer → operators, over a
buffer pool and disk model, charging simulated time to a virtual clock.
The introspection surface follows the tutorial's advice (slides 28, 52):

- :meth:`Engine.execute` — run a query, returning rows plus a
  server-side real/user/system time breakdown;
- :meth:`Engine.explain` — the plan without running it;
- :meth:`Engine.profile` — phase + per-operator timing breakdown;
- :meth:`Engine.trace` — per-operator rows/time lines after execution.

``Engine.make_cold()`` flushes the buffer pool — the hook cold run
protocols need.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

import numpy as np

from repro.db import kernels
from repro.db.buffer import BufferPool
from repro.db.context import (
    CostParameters,
    ExecutionContext,
    ExecutionMode,
)
from repro.db.disk import DiskModel
from repro.db.indexes import HashIndex, IndexCatalog
from repro.db.costmodel import CostModel
from repro.db.actuals import PlanActuals
from repro.db.optimizer import PlannerOptions, count_plan_nodes, plan_statement
from repro.db.parser import normalize_sql, parse_select, strip_explain
from repro.db.plan import PlanNode
from repro.db.profiler import ProfileReport, operator_timings
from repro.db.statistics import DEFAULT_BUCKETS, StatisticsCatalog
from repro.db.storage import Database
from repro.errors import DatabaseError
from repro.hardware.cache import CacheModel
from repro.hardware.compiler import BuildMode, BuildModel
from repro.hardware.counters import HardwareCounters
from repro.measurement.clocks import VirtualClock
from repro.measurement.timer import TimeBreakdown
from repro.obs import maybe_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector


@dataclass(frozen=True)
class EngineConfig:
    """Engine-wide configuration.

    ``tuned=False`` selects the out-of-the-box behaviour of slide 42's
    war story: a tiny buffer pool, no optimizer smarts.
    """

    buffer_pages: int = 4096
    mode: ExecutionMode = ExecutionMode.COLUMN
    build: BuildModel = field(default_factory=lambda: BuildModel(BuildMode.OPT))
    tuned: bool = True
    naive_joins: bool = False
    costs: CostParameters = field(default_factory=CostParameters)
    disk: DiskModel = field(default_factory=DiskModel)
    #: Operator implementation: "loop" (per-row Python, the
    #: differential-testing oracle) or "vectorized" (repro.db.kernels).
    executor: str = "loop"
    #: Let the vectorized executor defer filter materialisation by
    #: passing selection vectors between operators.
    selection_vectors: bool = True
    #: Reuse physical plans across textually-equivalent statements
    #: (keyed on normalised SQL + catalog versions).  Off by default so
    #: profiling still observes parse/optimize phases.
    plan_cache: bool = False
    #: Planner generation: "heuristic" (v1, textual join order) or
    #: "cost" (v2, join-order enumeration + calibrated operator costs;
    #: run :meth:`Engine.analyze` first for histogram-backed estimates).
    optimizer: str = "heuristic"
    #: Cost coefficients for the v2 planner; None uses the analytic
    #: :data:`~repro.db.costmodel.DEFAULT_COST_MODEL`.  Pass the result
    #: of :func:`~repro.db.costmodel.calibrate_cost_model` for measured
    #: coefficients.
    cost_model: Optional[CostModel] = None
    #: Simulated cache hierarchy (:class:`~repro.hardware.cache
    #: .CacheModel`).  None (the default) keeps memory latency invisible
    #: — simulated times match the pre-cache-conscious engine exactly.
    #: With a model set, joins charge cache/memory access latency and
    #: the cost-based planner prices hash vs radix accordingly.
    cache_model: Optional[CacheModel] = None
    #: Let scans prune zone-map blocks against pushed-down predicates.
    #: Off = the unpruned scan behaviour (kept for differential tests).
    zone_maps: bool = True
    #: Force this many radix bits on every RadixHashJoin (None = size
    #: partitions to the cache automatically); E28 sweeps this knob.
    radix_bits: Optional[int] = None

    VALID_EXECUTORS = ("loop", "vectorized")
    VALID_OPTIMIZERS = ("heuristic", "cost")

    def __post_init__(self):
        if self.executor not in self.VALID_EXECUTORS:
            raise DatabaseError(
                f"unknown executor {self.executor!r}; valid options: "
                + ", ".join(repr(e) for e in self.VALID_EXECUTORS))
        if self.optimizer not in self.VALID_OPTIMIZERS:
            raise DatabaseError(
                f"unknown optimizer {self.optimizer!r}; valid options: "
                + ", ".join(repr(o) for o in self.VALID_OPTIMIZERS))
        if self.radix_bits is not None and not \
                0 <= self.radix_bits <= kernels.MAX_RADIX_BITS:
            raise DatabaseError(
                f"radix_bits must be in [0, {kernels.MAX_RADIX_BITS}], "
                f"got {self.radix_bits}")

    def planner_options(self) -> PlannerOptions:
        if self.optimizer == "cost":
            return PlannerOptions.cost()
        if self.naive_joins:
            return PlannerOptions.naive()
        return PlannerOptions() if self.tuned else PlannerOptions.untuned()

    @classmethod
    def untuned(cls, **overrides: Any) -> "EngineConfig":
        """Out-of-the-box defaults: small buffer pool, no optimizer smarts.

        The 16MB pool is the classic "default settings often too
        conservative": fine for toy data, but once the working set
        exceeds it, repeated sequential scans thrash under LRU.
        """
        base = cls(buffer_pages=256, tuned=False)
        return replace(base, **overrides)


@dataclass(frozen=True)
class QueryResult:
    """Rows plus the server-side timing of one executed query."""

    columns: Tuple[str, ...]
    rows: Tuple[Tuple[Any, ...], ...]
    server_time: TimeBreakdown
    plan: PlanNode
    peak_memory_bytes: int = 0

    @property
    def n_rows(self) -> int:
        return len(self.rows)

    def column(self, name: str) -> List[Any]:
        try:
            idx = self.columns.index(name)
        except ValueError:
            raise DatabaseError(
                f"result has no column {name!r}; columns: "
                f"{list(self.columns)}") from None
        return [row[idx] for row in self.rows]

    def scalar(self) -> Any:
        """The single value of a 1x1 result."""
        if self.n_rows != 1 or len(self.columns) != 1:
            raise DatabaseError(
                f"expected a 1x1 result, got {self.n_rows}x"
                f"{len(self.columns)}")
        return self.rows[0][0]

    def formatted_size_bytes(self) -> int:
        """Bytes of the tab-separated textual rendering (result size)."""
        total = 0
        for row in self.rows:
            total += sum(len(_format_value(v)) for v in row)
            total += len(row)  # separators + newline
        return total

    def format_rows(self, limit: int = 20) -> str:
        lines = ["\t".join(self.columns)]
        for row in self.rows[:limit]:
            lines.append("\t".join(_format_value(v) for v in row))
        if self.n_rows > limit:
            lines.append(f"... ({self.n_rows - limit} more rows)")
        return "\n".join(lines)


def _format_value(value: Any) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)


class Engine:
    """A configured MiniDB instance over one database.

    Parameters
    ----------
    database:
        The catalogue of tables to run over.
    config:
        Engine configuration; defaults to the tuned defaults.
    clock:
        Simulated time sink.  Pass a shared
        :class:`~repro.measurement.clocks.VirtualClock` to keep several
        engines (e.g. one per design point) on one timeline.
    faults:
        Optional :class:`~repro.faults.FaultInjector`; wires the fault
        sites ``engine.execute`` (here), ``buffer.read`` (buffer pool)
        and ``disk.read`` (disk model) into this instance.
    """

    def __init__(self, database: Database,
                 config: Optional[EngineConfig] = None,
                 clock: Optional[VirtualClock] = None,
                 faults: Optional["FaultInjector"] = None):
        self.database = database
        self.config = config if config is not None else EngineConfig()
        self.clock = clock if clock is not None else VirtualClock()
        self.counters = HardwareCounters()
        self.faults = faults
        disk = self.config.disk if faults is None \
            else self.config.disk.with_faults(faults)
        self.buffer_pool = BufferPool(self.config.buffer_pages,
                                      disk, self.clock,
                                      self.counters, faults=faults)
        self.indexes = IndexCatalog()
        #: Execution-side cache hierarchy (charges latency + counters)
        #: and a counter-free twin for the planner's what-if costing —
        #: costing a plan must not pollute the hardware counters.
        if self.config.cache_model is not None:
            self.cache = self.config.cache_model.hierarchy(self.counters)
            self.planner_cache = self.config.cache_model.hierarchy()
        else:
            self.cache = None
            self.planner_cache = None
        #: Optimizer statistics (ANALYZE output); versioned so the plan
        #: cache invalidates when estimates change.
        self.table_stats = StatisticsCatalog()
        # Plan cache: normalised SQL + catalog versions -> physical plan.
        self._plan_cache: Dict[Tuple[Any, int, int, int], PlanNode] = {}
        self.plan_cache_hits = 0
        self.plan_cache_misses = 0
        #: Per-operator actuals of the most recent execution
        #: (:mod:`repro.db.actuals`); see :meth:`last_actuals`.
        self._last_actuals: Optional[PlanActuals] = None

    # -- lifecycle -------------------------------------------------------

    def make_cold(self) -> None:
        """Flush all cached pages: the next query runs cold (slide 32)."""
        self.buffer_pool.flush()

    def create_index(self, table_name: str, column_name: str) -> HashIndex:
        """Build a hash index; the planner will use it for selective
        equality predicates on that column."""
        return self.indexes.create(self.database.table(table_name),
                                   column_name)

    def drop_index(self, table_name: str, column_name: str) -> None:
        self.indexes.drop(table_name, column_name)

    def analyze(self, tables: Optional[List[str]] = None,
                n_buckets: int = DEFAULT_BUCKETS) -> List[str]:
        """ANALYZE: collect optimizer statistics (row counts, NDVs,
        min/max, equi-width histograms) for *tables* (default: all).

        Charges the scan work through the buffer pool and clock like
        any other full-table pass, bumps the statistics version (which
        invalidates cached plans), and returns the analyzed names.
        """
        ctx = self._context()
        with maybe_span("engine.analyze", "engine") as span:
            names = self.table_stats.analyze(self.database, tables,
                                             n_buckets=n_buckets)
            for name in names:
                table = self.database.table(name)
                self.buffer_pool.read_table(name, table.bytes_used)
                ctx.charge_cpu("scan", ctx.costs.scan_ns_per_value
                               * table.n_rows * len(table.column_names))
            if span is not None:
                span.set(tables=",".join(names),
                         stats_version=self.table_stats.version)
        return names

    def _context(self) -> ExecutionContext:
        return ExecutionContext(
            database=self.database, buffer_pool=self.buffer_pool,
            clock=self.clock, counters=self.counters,
            build=self.config.build, mode=self.config.mode,
            costs=self.config.costs,
            executor=self.config.executor,
            selection_vectors=self.config.selection_vectors,
            cache=self.cache,
            zone_maps=self.config.zone_maps,
            radix_bits=self.config.radix_bits)

    # -- query interface ---------------------------------------------------

    def _cache_key(self, sql: str) -> Tuple[Any, int, int, int]:
        """Cache key: normalised tokens + catalog versions, so any DDL,
        index change or statistics refresh (ANALYZE) invalidates every
        dependent plan."""
        return (normalize_sql(sql), self.database.version,
                self.indexes.version, self.table_stats.version)

    def _build_plan(self, sql: str) -> PlanNode:
        statement = parse_select(sql)
        return plan_statement(statement, self.database,
                              self.config.planner_options(),
                              indexes=self.indexes,
                              stats=self.table_stats,
                              cost_model=self.config.cost_model,
                              cache=self.planner_cache)

    def _plan_cached(self, sql: str) -> Tuple[PlanNode, Optional[bool]]:
        """``(plan, cache_hit)``; hit is None when caching is off."""
        if not self.config.plan_cache:
            return self._build_plan(sql), None
        key = self._cache_key(sql)
        cached = self._plan_cache.get(key)
        if cached is not None:
            self.plan_cache_hits += 1
            return cached, True
        self.plan_cache_misses += 1
        plan = self._build_plan(sql)
        self._plan_cache[key] = plan
        return plan, False

    def plan(self, sql: str) -> PlanNode:
        """Parse and plan without executing (plan-cache aware)."""
        return self._plan_cached(sql)[0]

    def explain(self, sql: str) -> str:
        """EXPLAIN: the physical plan with cardinality estimates, the
        kernel/build-side choices, and (when enabled) plan-cache status.

        An ``EXPLAIN [ANALYZE]`` prefix on *sql* is accepted and routed:
        ``EXPLAIN ANALYZE`` executes the statement and renders actuals
        (:meth:`explain_analyze`), plain ``EXPLAIN`` is stripped.
        """
        mode, sql = strip_explain(sql)
        if mode == "analyze":
            return self.explain_analyze(sql)
        plan, hit = self._plan_cached(sql)
        text = plan.explain(self._context())
        if hit is not None:
            status = "hit" if hit else "miss"
            text = (f"-- plan cache: {status} "
                    f"({len(self._plan_cache)} entries)\n") + text
        return text

    def explain_analyze(self, sql: str) -> str:
        """EXPLAIN ANALYZE: execute *sql* and render estimated vs
        actual rows side by side with the per-node q-error, plus
        batches, self time and buffer hits/misses per operator.

        The statement may carry an ``EXPLAIN ANALYZE`` prefix or not.
        All numbers come off the virtual clock and the executed plan,
        so the output is byte-identical across repeated seeded runs and
        across ``--jobs`` levels.
        """
        __, sql = strip_explain(sql)
        self.execute(sql)
        assert self._last_actuals is not None  # set by _profile
        return self._last_actuals.format()

    def last_actuals(self) -> Optional[PlanActuals]:
        """The :class:`~repro.db.actuals.PlanActuals` tree of the most
        recently executed statement (None before the first execution)."""
        return self._last_actuals

    def execute(self, sql: str) -> QueryResult:
        result, __ = self.profile(sql)
        return result

    def profile(self, sql: str) -> Tuple[QueryResult, ProfileReport]:
        """Execute and return both the result and the timing breakdown.

        Under an active :class:`~repro.obs.Tracer` the execution is
        decomposed into ``engine.parse`` / ``engine.optimize`` /
        ``engine.execute`` / ``engine.materialize`` child spans (the
        per-operator spans nest inside ``engine.execute``).
        """
        with maybe_span("engine.query", "engine", sql=sql[:80]):
            return self._profile(sql)

    def _profile(self, sql: str) -> Tuple[QueryResult, ProfileReport]:
        if self.faults is not None:
            self.faults.tick("engine.execute")
        ctx = self._context()
        costs = self.config.costs

        start = self.clock.sample()
        plan: Optional[PlanNode] = None
        cache_key = None
        if self.config.plan_cache:
            with maybe_span("engine.plan_cache", "engine") as cache_span:
                ctx.charge_cpu("arithmetic", costs.plan_cache_lookup_ns)
                cache_key = self._cache_key(sql)
                plan = self._plan_cache.get(cache_key)
                if plan is not None:
                    self.plan_cache_hits += 1
                else:
                    self.plan_cache_misses += 1
                if cache_span is not None:
                    cache_span.set(hit=plan is not None)

        if plan is not None:
            # Cached plan: the parse and optimize phases collapse to
            # the (already charged) lookup.
            after_parse = self.clock.sample()
            after_optimize = after_parse
        else:
            with maybe_span("engine.parse", "engine"):
                ctx.charge_cpu("arithmetic",
                               costs.parse_ns_per_char * len(sql))
                statement = parse_select(sql)
            after_parse = self.clock.sample()

            with maybe_span("engine.optimize", "engine"):
                plan = plan_statement(statement, self.database,
                                      self.config.planner_options(),
                                      indexes=self.indexes,
                                      stats=self.table_stats,
                                      cost_model=self.config.cost_model,
                                      cache=self.planner_cache)
                # The cost-based planner pays per plan it enumerated on
                # top of the per-node construction cost; heuristic plans
                # carry no optimizer_info, so their charge is unchanged.
                info = getattr(plan, "optimizer_info", None)
                considered = info["plans_considered"] if info else 0
                ctx.charge_cpu(
                    "arithmetic",
                    costs.optimize_ns_per_node
                    * (count_plan_nodes(plan) + considered))
            after_optimize = self.clock.sample()
            if cache_key is not None:
                self._plan_cache[cache_key] = plan

        with maybe_span("engine.execute", "engine") as execute_span:
            batch = plan.execute(ctx)
            if execute_span is not None:
                execute_span.set(
                    buffer_hits=self.buffer_pool.hits,
                    buffer_misses=self.buffer_pool.misses)
        after_execute = self.clock.sample()
        self._last_actuals = PlanActuals.from_plan(
            plan, sql=sql, executor=self.config.executor)

        with maybe_span("engine.materialize", "engine") as mat_span:
            # A root Filter under selection vectors can hand back a
            # SelBatch; gather it once here.
            batch = kernels.materialize_charged(ctx, batch)
            columns = tuple(batch)
            arrays = [batch[name] for name in columns]
            n = len(arrays[0]) if arrays else 0
            rows = tuple(tuple(_to_python(col[i]) for col in arrays)
                         for i in range(n))
            if mat_span is not None:
                mat_span.set(rows=n)
        total = self.clock.sample() - start
        server_time = TimeBreakdown(label=f"server:{sql[:40]}",
                                    real=total.real, user=total.user,
                                    system=total.system)
        result = QueryResult(columns=columns, rows=rows,
                             server_time=server_time, plan=plan,
                             peak_memory_bytes=ctx.peak_memory_bytes)
        phase_ms = {
            "parse": (after_parse - start).real * 1000.0,
            "optimize": (after_optimize - after_parse).real * 1000.0,
            "execute": (after_execute - after_optimize).real * 1000.0,
        }
        report = ProfileReport(sql=sql, phase_ms=phase_ms,
                               operators=operator_timings(plan))
        return result, report

    def trace(self, sql: str) -> str:
        """TRACE: execute and render per-operator rows and self-times."""
        __, report = self.profile(sql)
        lines = [f"TRACE {sql}"]
        for op in report.operators:
            lines.append(op.format(report.execute_ms))
        return "\n".join(lines)

    # -- introspection ------------------------------------------------------

    def describe_config(self) -> Dict[str, str]:
        """Tuning disclosure: every knob that shapes performance.

        Cross-system comparisons (:mod:`repro.db.systems`) publish this
        per contender so undisclosed tuning — the most common pitfall in
        Taipalus's DBMS-comparison survey — is machine-checkable.
        """
        config = self.config
        return {
            "backend": "minidb",
            "executor": config.executor,
            "optimizer": config.optimizer,
            "buffer_pages": str(config.buffer_pages),
            "build_mode": config.build.mode.value,
            "tuned": str(config.tuned),
            "plan_cache": str(config.plan_cache),
            "selection_vectors": str(config.selection_vectors),
            "cost_model": ("calibrated" if config.cost_model is not None
                           else "default"),
            "cache_model": (f"l2={config.cache_model.l2_kb}KB"
                            if config.cache_model is not None else "none"),
            "zone_maps": str(config.zone_maps),
            "radix_bits": ("auto" if config.radix_bits is None
                           else str(config.radix_bits)),
        }

    def statistics(self) -> Dict[str, float]:
        """Engine-level counters for analysis (CSI) work.

        The ``last_plan_*`` keys summarise the most recent execution's
        per-operator actuals (0.0 before the first execution); the full
        :class:`~repro.db.actuals.PlanActuals` tree is available from
        :meth:`last_actuals`.
        """
        sample = self.clock.sample()
        actuals = self._last_actuals
        return {
            "simulated_real_s": sample.real,
            "simulated_user_s": sample.user,
            "simulated_system_s": sample.system,
            "buffer_hits": float(self.buffer_pool.hits),
            "buffer_misses": float(self.buffer_pool.misses),
            "buffer_hit_rate": self.buffer_pool.hit_rate(),
            "buffer_evictions": float(self.buffer_pool.evictions),
            "io_pages_read": float(self.counters.read("io_reads")),
            "plan_cache_hits": float(self.plan_cache_hits),
            "plan_cache_misses": float(self.plan_cache_misses),
            "plan_cache_size": float(len(self._plan_cache)),
            "stats_version": float(self.table_stats.version),
            "stats_tables_analyzed": float(len(self.table_stats)),
            "stats_feedback_hints": float(self.table_stats.n_hints),
            "last_plan_nodes": float(actuals.n_nodes) if actuals else 0.0,
            "last_plan_rows": float(actuals.root.actual_rows)
            if actuals else 0.0,
            "last_plan_median_qerror": actuals.median_qerror()
            if actuals else 0.0,
            "last_plan_max_qerror": actuals.max_qerror()
            if actuals else 0.0,
        }

    # QueryResult carries per-query peak memory; engine-wide peaks are
    # per-execution (see ExecutionContext.peak_memory_bytes).


def _to_python(value: Any) -> Any:
    """Convert numpy scalars to plain Python for result rows."""
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value
