"""Client-side measurement: where does the result output go?

The tutorial's first timing table (slides 23-26) measures TPC-H queries
four ways — server user, server real, client real with output to a file,
client real with output to the terminal — and the punchline is that the
choice of output sink changes "the query time" dramatically once results
get large (Q16's 1.2MB doubles the client real time on a terminal).

:class:`Client` reproduces that setup over MiniDB: it runs the query on
the engine (server time) and then ships + renders the result through a
:class:`ResultSink`, charging per-byte costs to the same virtual clock so
client real time includes the server work, like a real ``mclient`` run.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Optional

from repro.db.engine import Engine
from repro.db.profiler import ProfileReport
from repro.errors import DatabaseError
from repro.obs import maybe_span

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.faults import FaultInjector


class ResultSink:
    """Destination of the query output, with a per-byte rendering cost."""

    #: Sink label used in reports.
    name = "null"
    #: Cost of shipping + rendering one output byte, nanoseconds.
    ns_per_byte = 0.0
    #: Fixed per-query overhead (connection, flush), nanoseconds.
    fixed_ns = 0.0

    def cost_seconds(self, n_bytes: int) -> float:
        if n_bytes < 0:
            raise DatabaseError("output size must be >= 0")
        return (self.fixed_ns + self.ns_per_byte * n_bytes) / 1e9


class FileSink(ResultSink):
    """Redirecting output to a file: cheap sequential writes."""

    name = "file"
    ns_per_byte = 75.0
    fixed_ns = 1e6  # 1 ms of open/flush overhead


class TerminalSink(ResultSink):
    """Printing to a terminal: scrolling and rendering are expensive."""

    name = "terminal"
    ns_per_byte = 600.0
    fixed_ns = 3e6


@dataclass(frozen=True)
class ClientMeasurement:
    """One row of the slide-23 table."""

    sql: str
    sink: str
    server_user_ms: float
    server_real_ms: float
    client_real_ms: float
    result_bytes: int
    n_rows: int

    def format(self) -> str:
        kb = self.result_bytes / 1024.0
        return (f"{self.sink:<9} server user {self.server_user_ms:8.1f} ms  "
                f"server real {self.server_real_ms:8.1f} ms  "
                f"client real {self.client_real_ms:8.1f} ms  "
                f"result {kb:8.1f} KB  rows {self.n_rows}")


class Client:
    """A measuring client connected to one engine.

    When the engine carries a fault injector (or one is passed
    explicitly), each query ticks the ``"client.run"`` site first, which
    may raise :class:`~repro.errors.ClientDisconnectError` — the
    tutorial's "server dropped the client" war story.
    """

    def __init__(self, engine: Engine, sink: Optional[ResultSink] = None,
                 faults: "Optional[FaultInjector]" = None):
        self.engine = engine
        self.sink = sink if sink is not None else FileSink()
        self.faults = faults if faults is not None else engine.faults

    def run(self, sql: str) -> ClientMeasurement:
        """Execute a query and measure server- and client-side times.

        Client real time = server real time + output shipping/rendering,
        charged on the same simulated clock.
        """
        with maybe_span("client.run", "client", sink=self.sink.name):
            if self.faults is not None:
                self.faults.tick("client.run")
            start = self.engine.clock.sample()
            result = self.engine.execute(sql)
            server = result.server_time
            n_bytes = result.formatted_size_bytes()
            with maybe_span("client.print", "client",
                            sink=self.sink.name, bytes=n_bytes):
                self.engine.clock.advance(
                    cpu_seconds=self.sink.cost_seconds(n_bytes))
            total = self.engine.clock.sample() - start
        return ClientMeasurement(
            sql=sql, sink=self.sink.name,
            server_user_ms=server.user_ms(),
            server_real_ms=server.real_ms(),
            client_real_ms=total.real * 1000.0,
            result_bytes=n_bytes, n_rows=result.n_rows)

    def profile(self, sql: str) -> ProfileReport:
        """A full four-phase profile including the Print phase.

        This is the complete ``mclient -t`` surface of slide 29: the
        engine contributes parse/optimize/execute, the sink's shipping
        and rendering cost appears as the ``print`` phase.
        """
        if self.faults is not None:
            self.faults.tick("client.run")
        result, report = self.engine.profile(sql)
        n_bytes = result.formatted_size_bytes()
        print_seconds = self.sink.cost_seconds(n_bytes)
        with maybe_span("client.print", "client",
                        sink=self.sink.name, bytes=n_bytes):
            self.engine.clock.advance(cpu_seconds=print_seconds)
        phase_ms = dict(report.phase_ms)
        phase_ms["print"] = print_seconds * 1000.0
        return ProfileReport(sql=sql, phase_ms=phase_ms,
                             operators=report.operators)
