"""Table/column statistics: the optimizer's view of the data.

The tutorial's core prescription — *measure, model, then let the model
drive decisions* — starts here: an ``ANALYZE``-style pass scans every
table once and records per-column row counts, distinct-value counts
(NDV), min/max bounds, and equi-width histograms.  The cost-based
optimizer (:mod:`repro.db.optimizer`, :mod:`repro.db.costmodel`) builds
cardinality estimates from these, and E25 measures how far those
estimates drift from the observed row counts (the q-error study).

Statistics are *versioned* exactly like the DDL and index catalogues:
:class:`StatisticsCatalog.version` is part of the engine's plan-cache
key, so refreshing statistics invalidates every cached plan that was
built from the stale snapshot.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

import numpy as np

from repro.db.expressions import (
    Between,
    BoolOp,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Like,
    Literal,
    Not,
    estimate_selectivity,
)
from repro.db.storage import Database, Table
from repro.db.types import DataType
from repro.errors import CatalogError

#: Default number of equi-width histogram buckets per numeric column.
DEFAULT_BUCKETS = 16

#: Selectivity floor: no predicate estimate goes below this, so chained
#: independence products can never collapse a cardinality to zero.
MIN_SELECTIVITY = 1e-6


@dataclass(frozen=True)
class Histogram:
    """Equi-width histogram over a numeric column.

    ``counts[i]`` holds the rows whose value falls into
    ``[lo + i*width, lo + (i+1)*width)`` (the last bucket is closed).
    """

    lo: float
    hi: float
    counts: Tuple[int, ...]

    @property
    def n_rows(self) -> int:
        return int(sum(self.counts))

    @property
    def width(self) -> float:
        return (self.hi - self.lo) / len(self.counts)

    @classmethod
    def build(cls, values: np.ndarray,
              n_buckets: int = DEFAULT_BUCKETS) -> "Histogram":
        if values.size == 0:
            return cls(lo=0.0, hi=0.0, counts=(0,) * max(1, n_buckets))
        lo = float(values.min())
        hi = float(values.max())
        if hi <= lo:
            # Constant column: one bucket carries everything.
            return cls(lo=lo, hi=lo, counts=(int(values.size),))
        counts, __ = np.histogram(values.astype(np.float64),
                                  bins=n_buckets, range=(lo, hi))
        return cls(lo=lo, hi=hi,
                   counts=tuple(int(c) for c in counts))

    def fraction_below(self, value: float) -> float:
        """Estimated fraction of rows strictly below *value*.

        Linear interpolation inside the bucket holding *value* — the
        classic equi-width assumption of uniformity within a bucket.
        """
        total = self.n_rows
        if total == 0:
            return 0.0
        if value <= self.lo:
            return 0.0
        if value > self.hi:
            return 1.0
        if self.hi == self.lo:
            return 0.0
        width = self.width
        bucket = min(int((value - self.lo) / width), len(self.counts) - 1)
        below = sum(self.counts[:bucket])
        inside = self.counts[bucket] * \
            ((value - (self.lo + bucket * width)) / width)
        return min(1.0, (below + inside) / total)

    def fraction_between(self, low: float, high: float) -> float:
        """Estimated fraction of rows in ``[low, high]``."""
        if high < low:
            return 0.0
        if high >= self.hi:
            return max(0.0, 1.0 - self.fraction_below(low))
        return max(0.0, self.fraction_below(high)
                   - self.fraction_below(low))


@dataclass(frozen=True)
class ColumnStats:
    """Statistics for one column of one table."""

    name: str
    dtype: DataType
    n_rows: int
    n_distinct: int
    min_value: Optional[float] = None
    max_value: Optional[float] = None
    histogram: Optional[Histogram] = None

    @classmethod
    def collect(cls, table: Table, name: str,
                n_buckets: int = DEFAULT_BUCKETS) -> "ColumnStats":
        column = table.column(name)
        data = column.data
        n = len(data)
        if column.dtype is DataType.STRING:
            ndv = len(set(data.tolist())) if n else 0
            return cls(name=name, dtype=column.dtype, n_rows=n,
                       n_distinct=ndv)
        values = data.astype(np.float64)
        ndv = int(np.unique(data).size) if n else 0
        return cls(name=name, dtype=column.dtype, n_rows=n,
                   n_distinct=ndv,
                   min_value=float(values.min()) if n else None,
                   max_value=float(values.max()) if n else None,
                   histogram=Histogram.build(values, n_buckets))

    # -- selectivity -------------------------------------------------------

    def selectivity_eq(self, value) -> float:
        """P(column = value): histogram bucket refined by NDV."""
        if self.n_rows == 0:
            return 0.0
        if self.n_distinct <= 0:
            return MIN_SELECTIVITY
        if self.histogram is not None and isinstance(value, (int, float)):
            v = float(value)
            if v < (self.min_value or 0.0) or v > (self.max_value or 0.0):
                return MIN_SELECTIVITY
        return max(MIN_SELECTIVITY, 1.0 / self.n_distinct)

    def selectivity_cmp(self, op: str, value) -> float:
        """P(column <op> value) for an ordering comparison."""
        if self.n_rows == 0:
            return 0.0
        if self.histogram is None or not isinstance(value, (int, float)):
            # Strings / unknown: System R rule of thumb.
            return 1 / 3
        v = float(value)
        below = self.histogram.fraction_below(v)
        in_range = (self.min_value is not None
                    and self.min_value <= v <= (self.max_value or v))
        at = self.selectivity_eq(value) if in_range else 0.0
        if op == "<":
            out = below
        elif op == "<=":
            out = below + at
        elif op == ">":
            out = 1.0 - below - at
        elif op == ">=":
            out = 1.0 - below
        else:  # pragma: no cover - guarded by caller
            out = 1 / 3
        return float(min(1.0, max(MIN_SELECTIVITY, out)))

    def selectivity_between(self, low, high) -> float:
        if self.n_rows == 0:
            return 0.0
        if self.histogram is None or not isinstance(low, (int, float)) \
                or not isinstance(high, (int, float)):
            return 0.25
        frac = self.histogram.fraction_between(float(low), float(high))
        return float(min(1.0, max(MIN_SELECTIVITY, frac)))


@dataclass(frozen=True)
class TableStats:
    """Statistics for one table: row count, width, per-column stats."""

    name: str
    n_rows: int
    row_bytes: int
    columns: Dict[str, ColumnStats] = field(default_factory=dict)

    @classmethod
    def collect(cls, table: Table,
                n_buckets: int = DEFAULT_BUCKETS) -> "TableStats":
        columns = {name: ColumnStats.collect(table, name, n_buckets)
                   for name in table.column_names}
        row_bytes = max(1, table.bytes_used // max(1, table.n_rows))
        return cls(name=table.name, n_rows=table.n_rows,
                   row_bytes=row_bytes, columns=columns)

    def column(self, name: str) -> Optional[ColumnStats]:
        return self.columns.get(name)

    def ndv(self, name: str) -> int:
        """NDV of a column; falls back to the row count (unique key)."""
        stats = self.columns.get(name)
        if stats is None or stats.n_distinct <= 0:
            return max(1, self.n_rows)
        return stats.n_distinct


class StatisticsCatalog:
    """Registry of per-table statistics, versioned for plan caching.

    ``analyze`` re-collects statistics (all tables or a subset) and
    bumps :attr:`version`; the engine includes the version in its
    plan-cache key, so any cached plan built from stale statistics is
    re-planned on its next use (tested in
    ``tests/db/test_plan_cache.py``).
    """

    def __init__(self):
        self._tables: Dict[str, TableStats] = {}
        #: Bumped on every analyze; part of the plan-cache key.
        self.version = 0
        #: Cardinality correction hints from execution feedback
        #: (:mod:`repro.db.feedback`): plan-shape signature → observed
        #: row count.  Consulted by the
        #: :class:`~repro.db.costmodel.CardinalityEstimator` before the
        #: model-based estimate.
        self._hints: Dict[Tuple, float] = {}

    def analyze(self, database: Database,
                tables: Optional[Tuple[str, ...]] = None,
                n_buckets: int = DEFAULT_BUCKETS) -> Tuple[str, ...]:
        """Collect statistics for *tables* (default: all); returns the
        analyzed names.  Always bumps the version, even for a refresh
        that produced identical numbers — staleness is about *when* the
        statistics were taken, not their values."""
        names = tables if tables is not None else database.table_names
        for name in names:
            if not database.has_table(name):
                raise CatalogError(
                    f"cannot analyze unknown table {name!r}")
        for name in names:
            self._tables[name] = TableStats.collect(
                database.table(name), n_buckets)
        self.version += 1
        return tuple(names)

    def table(self, name: str) -> Optional[TableStats]:
        return self._tables.get(name)

    # -- execution feedback (q-error corrections) --------------------------

    def record_feedback(self, hints: Dict[Tuple, float]) -> int:
        """Fold observed cardinalities back in as correction hints.

        *hints* maps plan-shape signatures (see
        :mod:`repro.db.feedback`) to observed row counts.  Recording
        bumps :attr:`version` — corrections change estimates, so every
        cached plan built without them is stale, exactly like after an
        ANALYZE.  Returns the number of hints recorded.
        """
        if not hints:
            return 0
        for signature, rows in hints.items():
            self._hints[signature] = max(0.0, float(rows))
        self.version += 1
        return len(hints)

    def hint(self, signature: Tuple) -> Optional[float]:
        """The observed row count recorded for *signature*, if any."""
        return self._hints.get(signature)

    @property
    def n_hints(self) -> int:
        return len(self._hints)

    def clear_feedback(self) -> int:
        """Drop all correction hints (bumps the version when any were
        present); returns how many were dropped."""
        n = len(self._hints)
        if n:
            self._hints.clear()
            self.version += 1
        return n

    @property
    def analyzed_tables(self) -> Tuple[str, ...]:
        return tuple(sorted(self._tables))

    def __len__(self) -> int:
        return len(self._tables)


# ---------------------------------------------------------------------------
# Feedback signatures
# ---------------------------------------------------------------------------
#
# A correction hint must be addressable both at planning time (from the
# enumerator's table/conjunct bookkeeping) and at harvest time (from an
# executed plan tree), so the signature is built from order-insensitive
# structural parts only.  They live here — next to the catalogue that
# stores them — so neither the cost model nor the feedback harvester
# needs to import the other.

def expr_fingerprint(conjuncts) -> Tuple[str, ...]:
    """Order-insensitive structural fingerprint of a conjunct list."""
    return tuple(sorted(repr(c) for c in conjuncts))


def scan_signature(table: str, conjuncts) -> Tuple:
    """Signature of a filtered base-table scan."""
    return ("scan", table, expr_fingerprint(conjuncts))


def join_signature(tables) -> Tuple:
    """Signature of the join result over a set of base tables."""
    return ("join", tuple(sorted(tables)))


# ---------------------------------------------------------------------------
# Predicate selectivity from statistics
# ---------------------------------------------------------------------------

def _column_and_literal(expr: Comparison):
    """``(column_name, literal_value, op)`` for col-vs-literal shapes,
    normalising ``literal <op> column`` to the column-first form."""
    flipped = {"<": ">", "<=": ">=", ">": "<", ">=": "<=",
               "=": "=", "<>": "<>"}
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left.name, expr.right.value, expr.op
    if isinstance(expr.right, ColumnRef) and isinstance(expr.left, Literal):
        return expr.right.name, expr.left.value, flipped[expr.op]
    return None


def predicate_selectivity(expr: Expr,
                          stats: Optional[TableStats]) -> float:
    """Estimated selectivity of *expr* over one table.

    Histogram/NDV-backed where statistics cover the referenced column;
    otherwise the System R rules of thumb
    (:func:`repro.db.expressions.estimate_selectivity`).

    Conjunctions apply the independence assumption with a documented
    *exponential-backoff correction cap* (SQL Server style): the
    conjunct selectivities are sorted ascending and combined as
    ``s0 * s1^(1/2) * s2^(1/4) * ...`` — each additional predicate
    contributes less, capping the compounding error of assuming
    independence between correlated columns.
    """
    if stats is None:
        return estimate_selectivity(expr)
    if isinstance(expr, Comparison):
        shaped = _column_and_literal(expr)
        if shaped is None:
            return estimate_selectivity(expr)
        column, value, op = shaped
        col_stats = stats.column(column)
        if col_stats is None:
            return estimate_selectivity(expr)
        if op == "=":
            return col_stats.selectivity_eq(value)
        if op == "<>":
            return max(MIN_SELECTIVITY,
                       1.0 - col_stats.selectivity_eq(value))
        return col_stats.selectivity_cmp(op, value)
    if isinstance(expr, Between):
        if isinstance(expr.expr, ColumnRef) \
                and isinstance(expr.low, Literal) \
                and isinstance(expr.high, Literal):
            col_stats = stats.column(expr.expr.name)
            if col_stats is not None:
                return col_stats.selectivity_between(
                    expr.low.value, expr.high.value)
        return estimate_selectivity(expr)
    if isinstance(expr, InList):
        if isinstance(expr.expr, ColumnRef):
            col_stats = stats.column(expr.expr.name)
            if col_stats is not None:
                total = sum(col_stats.selectivity_eq(v)
                            for v in expr.values)
                return float(min(1.0, max(MIN_SELECTIVITY, total)))
        return estimate_selectivity(expr)
    if isinstance(expr, Like):
        return estimate_selectivity(expr)
    if isinstance(expr, Not):
        return max(MIN_SELECTIVITY,
                   1.0 - predicate_selectivity(expr.child, stats))
    if isinstance(expr, BoolOp):
        factors = [predicate_selectivity(p, stats) for p in expr.parts]
        if expr.op == "and":
            return combine_conjuncts(factors)
        out = 0.0
        for f in factors:
            out = out + f - out * f
        return float(min(1.0, max(MIN_SELECTIVITY, out)))
    return estimate_selectivity(expr)


def combine_conjuncts(selectivities) -> float:
    """Independence with exponential backoff (the correction cap).

    ``s0 * s1^(1/2) * s2^(1/4) * ...`` over ascending selectivities;
    see :func:`predicate_selectivity` for the rationale.
    """
    factors = sorted(float(s) for s in selectivities)
    if not factors:
        return 1.0
    out = 1.0
    for i, s in enumerate(factors):
        out *= max(MIN_SELECTIVITY, min(1.0, s)) ** (0.5 ** i)
    return float(max(MIN_SELECTIVITY, min(1.0, out)))
