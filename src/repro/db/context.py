"""Execution context and cost parameters for MiniDB.

MiniDB queries do *real* work (numpy) and simultaneously charge
*simulated* time to a :class:`~repro.measurement.clocks.VirtualClock`.
The simulated time is what the tutorial experiments report: it is
deterministic, calibrated to a 2008-era laptop, and decomposes into user
(CPU) and system (I/O) shares exactly like the tutorial's tables.

:class:`CostParameters` holds the ns-per-unit constants; the engine's
*tuned* flag and the DBG/OPT :class:`~repro.hardware.compiler.BuildModel`
both act through them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional

from repro.db.buffer import BufferPool
from repro.db.storage import Database
from repro.errors import DatabaseError
from repro.hardware.compiler import BuildMode, BuildModel
from repro.hardware.counters import HardwareCounters
from repro.measurement.clocks import VirtualClock


class ExecutionMode(enum.Enum):
    """Engine execution style.

    COLUMN is MonetDB-like (vectorised primitives, negligible per-tuple
    interpretation); TUPLE is the classical Volcano iterator model
    (MySQL-like), paying an interpretation overhead for every tuple every
    operator touches — the contrast slide 54's two profile traces show.
    """

    COLUMN = "column"
    TUPLE = "tuple"


@dataclass(frozen=True)
class CostParameters:
    """Simulated CPU cost constants (nanoseconds).

    The defaults approximate a 1.5 GHz Pentium M running an optimized
    build.  ``tuple_overhead_ns`` is the per-tuple, per-operator
    interpretation cost paid only in TUPLE mode.
    """

    scan_ns_per_value: float = 10.0
    filter_ns_per_value: float = 20.0
    project_ns_per_value: float = 15.0
    hash_build_ns_per_row: float = 150.0
    hash_probe_ns_per_row: float = 100.0
    sort_ns_per_compare: float = 80.0
    agg_ns_per_value: float = 30.0
    group_ns_per_row: float = 120.0
    output_ns_per_byte: float = 15.0
    parse_ns_per_char: float = 400.0
    optimize_ns_per_node: float = 25_000.0
    tuple_overhead_ns: float = 600.0
    # Vectorized-kernel constants (see repro.db.kernels).  One fused
    # primitive per batch replaces a per-row interpreter loop, so the
    # per-unit costs drop by roughly an order of magnitude while each
    # kernel invocation pays a fixed launch cost.
    vector_filter_ns_per_value: float = 2.5
    vector_project_ns_per_value: float = 2.0
    vector_join_ns_per_row: float = 12.0
    vector_group_ns_per_row: float = 15.0
    vector_agg_ns_per_value: float = 4.0
    vector_distinct_ns_per_row: float = 12.0
    gather_ns_per_value: float = 1.0
    kernel_launch_ns: float = 4_000.0
    plan_cache_lookup_ns: float = 1_500.0
    # Cache-conscious execution (radix join / zone maps).  The radix
    # join streams both inputs once per partitioning pass and pays a
    # fixed setup per partition; the memory-latency side of the story
    # comes from the engine's CacheModel, not from these constants.
    radix_partition_ns_per_row: float = 6.0
    radix_partition_setup_ns: float = 500.0

    def __post_init__(self):
        for name, value in self.__dict__.items():
            if value < 0:
                raise DatabaseError(f"cost parameter {name} must be >= 0")

    def scaled(self, factor: float) -> "CostParameters":
        """All CPU constants scaled by *factor* (e.g. a slower machine)."""
        if factor <= 0:
            raise DatabaseError("scale factor must be positive")
        return CostParameters(**{name: value * factor
                                 for name, value in self.__dict__.items()})


class ExecutionContext:
    """Everything an operator needs while executing.

    Charging helpers route CPU cost through the build model (so a DBG
    build slows the right categories) and advance the virtual clock.
    """

    def __init__(self, database: Database, buffer_pool: BufferPool,
                 clock: VirtualClock,
                 counters: Optional[HardwareCounters] = None,
                 build: Optional[BuildModel] = None,
                 mode: ExecutionMode = ExecutionMode.COLUMN,
                 costs: Optional[CostParameters] = None,
                 executor: str = "loop",
                 selection_vectors: bool = True,
                 cache=None,
                 zone_maps: bool = True,
                 radix_bits: Optional[int] = None):
        self.database = database
        self.buffer_pool = buffer_pool
        self.clock = clock
        self.counters = counters if counters is not None \
            else buffer_pool.counters
        self.build = build if build is not None else BuildModel(BuildMode.OPT)
        self.mode = mode
        self.costs = costs if costs is not None else CostParameters()
        #: Which operator implementations run: "loop" (per-row Python,
        #: the differential-testing oracle) or "vectorized"
        #: (:mod:`repro.db.kernels`).
        self.executor = executor
        #: Whether the vectorized executor may defer materialisation by
        #: carrying selection vectors between operators.
        self.selection_vectors = selection_vectors
        #: Optional :class:`~repro.hardware.cache.CacheHierarchy`; when
        #: set, joins charge simulated memory-access latency on top of
        #: their per-row CPU cost (the memory wall becomes visible).
        self.cache = cache
        #: Whether scans may prune zone-map blocks against pushed-down
        #: predicates (off = the pre-cache-conscious behaviour, kept for
        #: pruned-vs-unpruned differential testing).
        self.zone_maps = zone_maps
        #: Forced radix-bit count for RadixHashJoin (None = size each
        #: partition to the cache automatically); E28 sweeps this.
        self.radix_bits = radix_bits
        #: Largest per-operator working set seen this execution (bytes).
        self.peak_memory_bytes = 0

    def charge_cpu(self, category: str, ns: float) -> None:
        """Charge CPU nanoseconds, scaled by the build model."""
        if ns < 0:
            raise DatabaseError("cannot charge negative CPU time")
        scaled = self.build.scale_cpu_ns(category, ns)
        self.clock.advance(cpu_seconds=scaled / 1e9)

    def charge_tuples(self, n_rows: int) -> None:
        """Per-tuple interpretation overhead (TUPLE mode only)."""
        if n_rows < 0:
            raise DatabaseError("row count must be >= 0")
        if self.mode is ExecutionMode.TUPLE and n_rows:
            self.charge_cpu("arithmetic",
                            n_rows * self.costs.tuple_overhead_ns)

    def track_memory(self, n_bytes: int) -> None:
        """Record one operator's working-set size; keeps the peak."""
        if n_bytes < 0:
            raise DatabaseError("memory size must be >= 0")
        if n_bytes > self.peak_memory_bytes:
            self.peak_memory_bytes = n_bytes

    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now
