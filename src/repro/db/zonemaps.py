"""Zone-map pruning: block verdicts for pushed-down predicates.

A scan holding a pushed-down predicate asks this module which zone-map
blocks can be skipped *before touching data*.  Every block gets one of
three verdicts:

- :data:`PRUNE_NONE` — the zone map proves no row in the block can
  match; the scan skips its I/O and CPU entirely;
- :data:`PRUNE_ALL` — the zone map proves every row matches (requires a
  NULL-free block: ``NaN`` compares false under every predicate);
- :data:`PRUNE_SOME` — undecidable from min/max alone; the block is
  read and filtered normally.

Verdicts are conservative: an unsupported conjunct shape degrades to
``SOME`` (never wrong results, only missed pruning), and a conjunction
combines per-conjunct verdicts with ``min`` — any ``NONE`` wins, ``ALL``
needs every conjunct to prove it.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from repro.db.expressions import (
    Between,
    ColumnRef,
    Comparison,
    Expr,
    InList,
    Literal,
    split_conjuncts,
)
from repro.db.storage import ZONE_BLOCK_ROWS, Table, ZoneEntry, ZoneMap

PRUNE_NONE = 0
PRUNE_SOME = 1
PRUNE_ALL = 2

#: Comparison flips for ``literal OP column`` rewritten as ``column OP'``.
_FLIP = {"=": "=", "<>": "<>", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


def _column_literal(expr: Comparison) -> Optional[Tuple[str, str, object]]:
    """Normalise a comparison to ``(column, op, literal_value)``."""
    if isinstance(expr.left, ColumnRef) and isinstance(expr.right, Literal):
        return expr.left.name, expr.op, expr.right.value
    if isinstance(expr.left, Literal) and isinstance(expr.right, ColumnRef):
        return expr.right.name, _FLIP[expr.op], expr.left.value
    return None


def _cmp_verdict(entry: ZoneEntry, op: str, value) -> int:
    """Verdict of ``column OP value`` for one block."""
    lo, hi = entry.lo, entry.hi
    if lo is None:
        # All-NULL (or empty) block: every comparison is false.
        return PRUNE_NONE
    no_nulls = entry.null_count == 0
    try:
        if op == "<":
            if lo >= value:
                return PRUNE_NONE
            if hi < value and no_nulls:
                return PRUNE_ALL
        elif op == "<=":
            if lo > value:
                return PRUNE_NONE
            if hi <= value and no_nulls:
                return PRUNE_ALL
        elif op == ">":
            if hi <= value:
                return PRUNE_NONE
            if lo > value and no_nulls:
                return PRUNE_ALL
        elif op == ">=":
            if hi < value:
                return PRUNE_NONE
            if lo >= value and no_nulls:
                return PRUNE_ALL
        elif op == "=":
            if value < lo or value > hi:
                return PRUNE_NONE
            if lo == hi == value and no_nulls:
                return PRUNE_ALL
        elif op == "<>":
            if lo == hi == value:
                return PRUNE_NONE
            if (value < lo or value > hi) and no_nulls:
                return PRUNE_ALL
    except TypeError:
        # Incomparable literal/column domains: never prune on them.
        return PRUNE_SOME
    return PRUNE_SOME


def _conjunct_verdicts(table: Table, conjunct: Expr
                       ) -> Optional[np.ndarray]:
    """Per-block verdicts of one conjunct, or None when unsupported."""
    if isinstance(conjunct, Comparison):
        normalised = _column_literal(conjunct)
        if normalised is None or not table.has_column(normalised[0]):
            return None
        column, op, value = normalised
        if op == "=":
            dictionary = table.column(column).dictionary
            if dictionary is not None and dictionary.code_for(value) is None:
                # Dictionary miss: the value exists nowhere in the column.
                zone = table.zone_map(column)
                return np.full(zone.n_blocks, PRUNE_NONE, dtype=np.int8)
        zone = table.zone_map(column)
        return np.asarray([_cmp_verdict(e, op, value)
                           for e in zone.entries], dtype=np.int8)
    if isinstance(conjunct, Between) and \
            isinstance(conjunct.expr, ColumnRef) and \
            isinstance(conjunct.low, Literal) and \
            isinstance(conjunct.high, Literal):
        column = conjunct.expr.name
        if not table.has_column(column):
            return None
        zone = table.zone_map(column)
        low = np.asarray([_cmp_verdict(e, ">=", conjunct.low.value)
                          for e in zone.entries], dtype=np.int8)
        high = np.asarray([_cmp_verdict(e, "<=", conjunct.high.value)
                           for e in zone.entries], dtype=np.int8)
        return np.minimum(low, high)
    if isinstance(conjunct, InList) and \
            isinstance(conjunct.expr, ColumnRef):
        column = conjunct.expr.name
        if not table.has_column(column):
            return None
        zone = table.zone_map(column)
        per_value = [
            np.asarray([_cmp_verdict(e, "=", value)
                        for e in zone.entries], dtype=np.int8)
            for value in conjunct.values]
        # IN is a disjunction: a block prunes only when every value
        # does; it is all-true when any single value proves ALL.
        return np.maximum.reduce(per_value)
    return None


def block_verdicts(table: Table, predicate: Expr
                   ) -> Optional[np.ndarray]:
    """Per-block verdicts of *predicate* over *table*'s zone maps.

    Returns None when no conjunct has a zone-map-usable shape (the scan
    then behaves exactly as if zone maps did not exist).
    """
    if table.n_rows == 0:
        return None
    combined: Optional[np.ndarray] = None
    supported = False
    for conjunct in split_conjuncts(predicate):
        verdicts = _conjunct_verdicts(table, conjunct)
        if verdicts is None:
            # Unknown conjunct caps the proof at SOME but cannot turn a
            # NONE from another conjunct back into a candidate block.
            verdicts_arr = np.full(table.n_blocks, PRUNE_SOME,
                                   dtype=np.int8)
        else:
            supported = True
            verdicts_arr = verdicts
        combined = verdicts_arr if combined is None \
            else np.minimum(combined, verdicts_arr)
    if not supported:
        return None
    return combined


def surviving_rows(table: Table,
                   verdicts: np.ndarray) -> Optional[np.ndarray]:
    """Row indices of non-pruned blocks, or None when nothing prunes."""
    if not bool((verdicts == PRUNE_NONE).any()):
        return None
    keep: List[np.ndarray] = []
    for block, verdict in enumerate(verdicts):
        if verdict == PRUNE_NONE:
            continue
        start = block * ZONE_BLOCK_ROWS
        stop = min(start + ZONE_BLOCK_ROWS, table.n_rows)
        keep.append(np.arange(start, stop, dtype=np.int64))
    if not keep:
        return np.zeros(0, dtype=np.int64)
    return np.concatenate(keep)


__all__ = [
    "PRUNE_ALL",
    "PRUNE_NONE",
    "PRUNE_SOME",
    "ZoneMap",
    "block_verdicts",
    "surviving_rows",
]
