"""Physical-operator selection: a chainable post-join-order stage.

Modeled on PostBOUND's ``physops.selection``: once the join *order* is
fixed, a chain of :class:`PhysicalOperatorSelection` stages decides the
physical *operators* — hash vs merge vs nested-loop join, sequential vs
index scan, and the hash-join build side.  Stages chain with
:meth:`~PhysicalOperatorSelection.chain_with`; each stage refines the
assignment produced by its predecessor, so a cost-based stage can run
first and a hint stage can override it afterwards.

The optimizer (:mod:`repro.db.optimizer`) builds an
:class:`OperatorSelectionContext` describing the ordered join steps and
per-table scan alternatives, runs the chain, and assembles the physical
plan from the resulting :class:`PhysicalOperatorAssignment`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.db import kernels
from repro.db.costmodel import CostModel
from repro.db.parser import PlanHints
from repro.errors import PlanError

JOIN_OPERATORS = ("hash", "merge", "loop", "radix")
SCAN_OPERATORS = ("seq", "index")
BUILD_SIDES = ("left", "right")


@dataclass(frozen=True)
class JoinStep:
    """One step of a left-deep join order: the prefix joins *table*.

    ``left_keys`` name columns available in the joined prefix,
    ``right_keys`` the matching columns of the new table (one pair per
    join edge; more than one when the join graph has a cycle).
    """

    table: str          # the table this step adds (the right input)
    left_keys: Tuple[str, ...]
    right_keys: Tuple[str, ...]
    rows_left: float    # estimated rows of the joined prefix
    rows_right: float   # estimated rows of the (filtered) new table
    rows_out: float     # estimated rows after this join


@dataclass(frozen=True)
class OperatorSelectionContext:
    """Everything a selection stage may consult.

    ``scan_costs`` maps each table to its available access paths and
    their estimated cost in ns (``{"seq": 120.0, "index": 40.0}``); a
    missing ``"index"`` entry means no usable index exists.
    """

    steps: Tuple[JoinStep, ...]
    scan_costs: Dict[str, Dict[str, float]]
    cost_model: CostModel
    #: Optional :class:`~repro.hardware.cache.CacheHierarchy` used to
    #: cost memory-access patterns (None = memory latency invisible, the
    #: pre-cache-conscious behaviour; radix then never wins).
    cache: Optional[object] = None


@dataclass
class PhysicalOperatorAssignment:
    """The chain's output: operator choices keyed by table.

    ``join_ops``/``build_sides`` are keyed by the table each join step
    *introduces* (unambiguous in a left-deep order).
    """

    scan_ops: Dict[str, str] = field(default_factory=dict)
    join_ops: Dict[str, str] = field(default_factory=dict)
    build_sides: Dict[str, str] = field(default_factory=dict)

    def set_scan(self, table: str, operator: str) -> None:
        if operator not in SCAN_OPERATORS:
            raise PlanError(f"unknown scan operator {operator!r}")
        self.scan_ops[table] = operator

    def set_join(self, table: str, operator: str) -> None:
        if operator not in JOIN_OPERATORS:
            raise PlanError(f"unknown join operator {operator!r}")
        self.join_ops[table] = operator

    def set_build_side(self, table: str, side: str) -> None:
        if side not in BUILD_SIDES:
            raise PlanError(f"unknown build side {side!r}")
        self.build_sides[table] = side


class PhysicalOperatorSelection:
    """Base class for one stage of the operator-selection chain."""

    def __init__(self):
        self._next: Optional["PhysicalOperatorSelection"] = None

    def chain_with(self, successor: "PhysicalOperatorSelection"
                   ) -> "PhysicalOperatorSelection":
        """Append *successor* to the end of this chain; returns self so
        chains compose fluently:
        ``CostBased(...).chain_with(Hinted(hints))``."""
        if self._next is None:
            self._next = successor
        else:
            self._next.chain_with(successor)
        return self

    def select_physical_operators(
            self, context: OperatorSelectionContext,
            assignment: Optional[PhysicalOperatorAssignment] = None
    ) -> PhysicalOperatorAssignment:
        """Run this stage, then every chained successor."""
        if assignment is None:
            assignment = PhysicalOperatorAssignment()
        self._apply(context, assignment)
        if self._next is not None:
            self._next.select_physical_operators(context, assignment)
        return assignment

    def _apply(self, context: OperatorSelectionContext,
               assignment: PhysicalOperatorAssignment) -> None:
        raise NotImplementedError


class CostBasedOperatorSelection(PhysicalOperatorSelection):
    """Pick the cheapest operator per step under the cost model.

    - joins: min over hash / merge / loop, where merge pays for the
      Sort enforcers it needs on both inputs;
    - scans: the cheaper of the available access paths;
    - build side: hash the estimated-smaller input (ties build right,
      matching the executor's classic layout).
    """

    def _apply(self, context: OperatorSelectionContext,
               assignment: PhysicalOperatorAssignment) -> None:
        model = context.cost_model
        for table, paths in context.scan_costs.items():
            assignment.set_scan(
                table, min(paths, key=lambda op: paths[op]))
        for step in context.steps:
            costs = {op: join_operator_cost(model, op, step,
                                            cache=context.cache)
                     for op in JOIN_OPERATORS}
            assignment.set_join(step.table, min(costs, key=costs.get))
            assignment.set_build_side(
                step.table,
                "left" if step.rows_left < step.rows_right else "right")


class HintOperatorSelection(PhysicalOperatorSelection):
    """Force operators from ``/*+ ... */`` plan hints.

    Chain this *after* a cost-based stage: only hinted entries are
    overridden, everything else keeps the predecessor's choice.
    """

    def __init__(self, hints: PlanHints):
        super().__init__()
        self.hints = hints

    def _apply(self, context: OperatorSelectionContext,
               assignment: PhysicalOperatorAssignment) -> None:
        known = set(context.scan_costs)
        joined = {step.table for step in context.steps}
        for table, operator in self.hints.scans:
            if table not in known:
                raise PlanError(
                    f"SCAN hint references unknown table {table!r}")
            if operator == "index" \
                    and "index" not in context.scan_costs[table]:
                raise PlanError(
                    f"SCAN({table} index) hint: no usable index "
                    f"(equality predicate on an indexed column needed)")
            assignment.set_scan(table, operator)
        for table, operator in self.hints.join_ops:
            if table not in joined:
                raise PlanError(
                    f"JOIN_OP hint references {table!r}, which no join "
                    f"step introduces (first table cannot be hinted)")
            assignment.set_join(table, operator)
        for table, side in self.hints.build_sides:
            if table not in joined:
                raise PlanError(
                    f"BUILD hint references {table!r}, which no join "
                    f"step introduces")
            assignment.set_build_side(table, side)


def _hash_memory_ns(cache, step: JoinStep) -> float:
    """Memory-access cost of a plain hash join under *cache*: build and
    probe are random accesses into a full-build-size hash table."""
    if cache is None:
        return 0.0
    n_build = int(min(step.rows_left, step.rows_right))
    n_probe = int(step.rows_left + step.rows_right) - n_build
    working_set = max(1, kernels.HASH_TABLE_BYTES_PER_ROW * n_build)
    return (cache.random_accesses(n_build, working_set)
            + cache.random_accesses(n_probe, working_set))


def _radix_extra_ns(cache, step: JoinStep) -> float:
    """Partitioning overhead plus the (cache-resident) access cost of a
    radix join.  Without a cache model the partitioning passes make
    radix strictly costlier than hash, so it is never chosen — exactly
    the pre-cache-conscious plan space."""
    from repro.db.context import CostParameters
    from repro.hardware.cache import DEFAULT_CACHE_MODEL

    n_build = int(min(step.rows_left, step.rows_right))
    n_probe = int(step.rows_left + step.rows_right) - n_build
    n_total = n_build + n_probe
    if cache is not None and cache.levels:
        cache_bytes = cache.levels[-1].size_bytes
    else:
        cache_bytes = DEFAULT_CACHE_MODEL.l2_bytes
    bits = kernels.radix_bits_for(n_build, cache_bytes)
    passes = kernels.radix_passes(bits)
    costs = CostParameters()
    ns = passes * costs.radix_partition_ns_per_row * n_total
    if passes:
        ns += (1 << bits) * costs.radix_partition_setup_ns
    if cache is not None:
        for _ in range(passes):
            ns += cache.sequential_scan(n_total, 16)
        working_set = max(
            1, (kernels.HASH_TABLE_BYTES_PER_ROW * n_build) >> bits)
        ns += cache.random_accesses(n_build, working_set)
        ns += cache.random_accesses(n_probe, working_set)
    return ns


def join_operator_cost(model: CostModel, operator: str,
                       step: JoinStep, cache=None) -> float:
    """Estimated ns for executing one join step with *operator*.

    Merge joins pay for the Sort enforcers the executor requires on
    both (unsorted) inputs; that keeps merge honest against hash until
    interesting orders are tracked.  With a *cache* hierarchy the hash
    join additionally pays random-access memory latency sized by its
    build input, while the radix join pays partitioning passes but
    probes cache-resident partitions — so radix wins exactly when the
    build side outgrows the cache.
    """
    if operator == "hash":
        return (model.operator_ns("HashJoin", step.rows_left,
                                  step.rows_out, step.rows_right)
                + _hash_memory_ns(cache, step))
    if operator == "radix":
        return (model.operator_ns("RadixHashJoin", step.rows_left,
                                  step.rows_out, step.rows_right)
                + _radix_extra_ns(cache, step))
    if operator == "loop":
        return model.operator_ns("NestedLoopJoin", step.rows_left,
                                 step.rows_out, step.rows_right)
    if operator == "merge":
        return (model.operator_ns("MergeJoin", step.rows_left,
                                  step.rows_out, step.rows_right)
                + model.operator_ns("Sort", step.rows_left,
                                    step.rows_left)
                + model.operator_ns("Sort", step.rows_right,
                                    step.rows_right))
    raise PlanError(f"unknown join operator {operator!r}")
