"""MiniDB column types.

MiniDB is columnar: every column is a numpy array of one of four logical
types.  Dates are stored as int64 days-since-epoch so that range
predicates stay vectorisable; strings use object arrays so LIKE patterns
and variable lengths work without padding games.
"""

from __future__ import annotations

import datetime as _dt
import enum
from typing import Any

import numpy as np

from repro.errors import TypeMismatchError


class DataType(enum.Enum):
    """Logical column types."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"
    DATE = "date"       # stored as int64 days since 1970-01-01

    @property
    def numpy_dtype(self) -> np.dtype:
        if self is DataType.INT64 or self is DataType.DATE:
            return np.dtype(np.int64)
        if self is DataType.FLOAT64:
            return np.dtype(np.float64)
        return np.dtype(object)

    @property
    def is_numeric(self) -> bool:
        return self in (DataType.INT64, DataType.FLOAT64)

    @property
    def byte_width(self) -> int:
        """Approximate storage bytes per value (strings assume 16)."""
        if self is DataType.STRING:
            return 16
        return 8


_EPOCH = _dt.date(1970, 1, 1)


def date_to_days(value: "_dt.date | str") -> int:
    """Convert a date (or ISO string) to days-since-epoch."""
    if isinstance(value, str):
        value = _dt.date.fromisoformat(value)
    if not isinstance(value, _dt.date):
        raise TypeMismatchError(f"not a date: {value!r}")
    return (value - _EPOCH).days


def days_to_date(days: int) -> _dt.date:
    """Convert days-since-epoch back to a date."""
    return _EPOCH + _dt.timedelta(days=int(days))


def coerce_array(values: Any, dtype: DataType) -> np.ndarray:
    """Build a column array of the given logical type from raw values.

    DATE columns accept ISO strings, ``datetime.date`` objects, or ints.
    """
    if dtype is DataType.DATE:
        out = np.empty(len(values), dtype=np.int64)
        for i, v in enumerate(values):
            out[i] = v if isinstance(v, (int, np.integer)) else date_to_days(v)
        return out
    if dtype is DataType.STRING:
        arr = np.empty(len(values), dtype=object)
        for i, v in enumerate(values):
            if not isinstance(v, str):
                raise TypeMismatchError(
                    f"string column got non-string {v!r} at row {i}")
            arr[i] = v
        return arr
    try:
        return np.asarray(values, dtype=dtype.numpy_dtype)
    except (ValueError, TypeError) as exc:
        raise TypeMismatchError(
            f"cannot coerce values to {dtype.value}: {exc}") from exc


def common_numeric_type(a: DataType, b: DataType) -> DataType:
    """Result type of arithmetic between two columns."""
    if not (a.is_numeric and b.is_numeric):
        raise TypeMismatchError(
            f"arithmetic needs numeric operands, got {a.value} and {b.value}")
    if DataType.FLOAT64 in (a, b):
        return DataType.FLOAT64
    return DataType.INT64


def literal_type(value: Any) -> DataType:
    """Logical type of a Python literal."""
    if isinstance(value, bool):
        raise TypeMismatchError("MiniDB has no boolean column type")
    if isinstance(value, (int, np.integer)):
        return DataType.INT64
    if isinstance(value, (float, np.floating)):
        return DataType.FLOAT64
    if isinstance(value, str):
        return DataType.STRING
    if isinstance(value, _dt.date):
        return DataType.DATE
    raise TypeMismatchError(f"unsupported literal {value!r}")
