"""Per-operator actuals: what execution *did* vs what the planner said.

The paper's first prescription is to measure, not guess; EXPLAIN output
that shows only estimates is a guess wearing a uniform.  After every
execution each :class:`~repro.db.plan.PlanNode` carries its observed
row count, batch count, self/total simulated time and the buffer-pool
hits/misses its own ``_run`` caused (children excluded — they record
their own).  :class:`PlanActuals` snapshots that tree into an immutable
est-vs-actual report:

- ``EXPLAIN ANALYZE`` (:meth:`repro.db.engine.Engine.explain_analyze`)
  renders it side by side with the per-node *q-error*
  ``max(est/act, act/est)`` — the standard cardinality-accuracy metric;
- :mod:`repro.db.feedback` harvests observed cardinalities from it and
  folds them back into the statistics catalogue;
- E25/E26 read their q-error scatters from here instead of re-walking
  live plan objects.

Everything is stamped from the virtual clock, so the rendering is
byte-identical across repeated seeded runs and across ``--jobs`` levels.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterator, Optional, Tuple

from repro.db.plan import PlanNode
from repro.errors import PlanError

#: ``span_extras`` keys surfaced per node in EXPLAIN ANALYZE output, in
#: this (stable) rendering order — cache-conscious execution actuals:
#: zone-map block pruning, dictionary usage, radix-join partitioning.
EXTRA_KEYS = ("blocks", "blocks_pruned", "dict_columns",
              "radix_bits", "partitions", "zone")


def q_error(est_rows: float, actual_rows: float) -> float:
    """The cardinality q-error ``max(est/act, act/est)``, floored at 1.

    Both sides are clamped to one row so empty results do not divide by
    zero; a perfect estimate scores exactly 1.0.
    """
    ratio = max(float(est_rows), 1.0) / max(float(actual_rows), 1.0)
    return max(ratio, 1.0 / ratio)


@dataclass(frozen=True)
class NodeActuals:
    """One operator's est-vs-actual record."""

    operator: str
    kind: str
    est_rows: float
    actual_rows: int
    batches: int
    self_ms: float
    total_ms: float
    buffer_hits: int
    buffer_misses: int
    children: Tuple["NodeActuals", ...] = ()
    #: Operator-specific actuals (:data:`EXTRA_KEYS` subset), e.g. a
    #: scan's pruned-block count or a radix join's partition count.
    extras: Tuple[Tuple[str, Any], ...] = ()

    @property
    def q_error(self) -> float:
        return q_error(self.est_rows, float(self.actual_rows))

    def walk(self) -> Iterator["NodeActuals"]:
        """Yield this node then every descendant, pre-order."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        return {
            "operator": self.operator,
            "kind": self.kind,
            "est_rows": self.est_rows,
            "actual_rows": self.actual_rows,
            "q_error": self.q_error,
            "batches": self.batches,
            "self_ms": self.self_ms,
            "total_ms": self.total_ms,
            "buffer_hits": self.buffer_hits,
            "buffer_misses": self.buffer_misses,
            "extras": dict(self.extras),
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_node(cls, node: PlanNode) -> "NodeActuals":
        """Snapshot one executed plan node (and its subtree)."""
        if node.rows_out is None:
            raise PlanError(
                f"cannot collect actuals: operator {node.name()!r} was "
                "never executed")
        est = node.last_est_rows
        if est is None:
            est = node.est_rows if node.est_rows is not None else 0.0
        return cls(
            operator=node.name(),
            kind=type(node).__name__,
            est_rows=float(est),
            actual_rows=int(node.rows_out),
            batches=int(node.batches),
            self_ms=node.self_seconds * 1000.0,
            total_ms=node.total_seconds * 1000.0,
            buffer_hits=int(node.buffer_hits),
            buffer_misses=int(node.buffer_misses),
            children=tuple(cls.from_node(child)
                           for child in node.children),
            extras=tuple((key, node.span_extras[key])
                         for key in EXTRA_KEYS
                         if key in node.span_extras))


@dataclass(frozen=True)
class PlanActuals:
    """The executed plan's full est-vs-actual tree for one statement."""

    sql: str
    executor: str
    root: NodeActuals

    @classmethod
    def from_plan(cls, plan: PlanNode, sql: str,
                  executor: str) -> "PlanActuals":
        return cls(sql=sql, executor=executor,
                   root=NodeActuals.from_node(plan))

    def walk(self) -> Iterator[NodeActuals]:
        return self.root.walk()

    @property
    def n_nodes(self) -> int:
        return sum(1 for __ in self.walk())

    def qerrors(self) -> Tuple[float, ...]:
        """Every node's q-error, pre-order."""
        return tuple(node.q_error for node in self.walk())

    def median_qerror(self) -> float:
        """Order-statistic median of the per-node q-errors."""
        ordered = sorted(self.qerrors())
        return ordered[len(ordered) // 2]

    def max_qerror(self) -> float:
        return max(self.qerrors())

    def node_for(self, kind: str) -> Optional[NodeActuals]:
        """The first node (pre-order) of one operator kind, if any."""
        for node in self.walk():
            if node.kind == kind:
                return node
        return None

    def format(self) -> str:
        """The EXPLAIN ANALYZE rendering: est vs actual, per node.

        Deterministic: every number comes off the virtual clock or the
        (seeded) data, so repeated seeded runs produce identical bytes.
        """
        lines = [
            f"EXPLAIN ANALYZE (executor={self.executor})",
            f"-- {self.n_nodes} operators, "
            f"median q-error {self.median_qerror():.2f}, "
            f"max {self.max_qerror():.2f}",
        ]

        def render(node: NodeActuals, indent: int) -> None:
            parts = [
                node.operator,
                f"est_rows={node.est_rows:.0f}",
                f"rows={node.actual_rows}",
                f"q={node.q_error:.2f}",
                f"batches={node.batches}",
                f"self={node.self_ms:.3f}ms",
                f"buffer={node.buffer_hits}/{node.buffer_misses}",
            ]
            for key, value in node.extras:
                if key == "blocks_pruned":
                    continue  # rendered with "blocks" below
                if key == "blocks":
                    pruned = dict(node.extras).get("blocks_pruned", 0)
                    parts.append(f"blocks pruned={pruned}/{value}")
                else:
                    parts.append(f"{key}={value}")
            lines.append("  " * indent + "-> " + "  ".join(parts))
            for child in node.children:
                render(child, indent + 1)

        render(self.root, 0)
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "sql": self.sql,
            "executor": self.executor,
            "n_nodes": self.n_nodes,
            "median_qerror": self.median_qerror(),
            "max_qerror": self.max_qerror(),
            "plan": self.root.to_dict(),
        }
