"""Concurrent serving simulation: load, overload, and self-defence.

The paper's methodology chapters end where most database papers begin:
a server under concurrent load, past its saturation knee, with faults
arriving at the worst time.  This package closes that gap without
giving up determinism — N simulated clients drive one MiniDB engine
through a discrete-event loop on the virtual clock, so every
interleaving is a pure function of the seed:

- :mod:`repro.serve.loop` — the deterministic event loop;
- :mod:`repro.serve.traffic` — open-loop (Poisson arrival-rate) and
  closed-loop (think-time) generators, with fail-fast validation of
  contradictory specs;
- :mod:`repro.serve.admission` — the bounded run queue and its
  shedding policies (reject / shed-oldest / degrade-to-cached);
- :mod:`repro.serve.breaker` — the error-rate/latency-SLO circuit
  breaker with half-open probing;
- :mod:`repro.serve.server` — the simulation tying them together and
  the :class:`~repro.serve.server.ServeReport` it produces.

Experiment E24 (:mod:`repro.experiments.e24_serving`) uses this package
to measure throughput-vs-offered-load and tail-latency knee curves,
with and without the protection mechanisms, under injected faults.
"""

from repro.serve.admission import (
    ADMITTED,
    DEGRADED,
    POLICIES,
    REJECTED,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.breaker import (
    CLOSED,
    HALF_OPEN,
    OPEN,
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from repro.serve.loop import EventLoop
from repro.serve.server import (
    ALL_STATUSES,
    RequestRecord,
    ServeConfig,
    ServeReport,
    ServingSimulation,
)
from repro.serve.traffic import (
    CLOSED_LOOP,
    OPEN_LOOP,
    ClosedLoopTraffic,
    OpenLoopTraffic,
    make_traffic,
)

__all__ = [
    "ADMITTED",
    "ALL_STATUSES",
    "CLOSED",
    "CLOSED_LOOP",
    "DEGRADED",
    "HALF_OPEN",
    "OPEN",
    "OPEN_LOOP",
    "POLICIES",
    "REJECTED",
    "AdmissionConfig",
    "AdmissionController",
    "BreakerConfig",
    "BreakerTransition",
    "CircuitBreaker",
    "ClosedLoopTraffic",
    "EventLoop",
    "OpenLoopTraffic",
    "RequestRecord",
    "ServeConfig",
    "ServeReport",
    "ServingSimulation",
    "make_traffic",
]
