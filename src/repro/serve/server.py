"""The serving simulator: MiniDB behind a session pool under load.

:class:`ServingSimulation` drives one :class:`~repro.db.engine.Engine`
through a traffic generator on the deterministic event loop:

- arrivals pass the :class:`~repro.serve.breaker.CircuitBreaker` (fail
  fast when the engine is known-broken), then the
  :class:`~repro.serve.admission.AdmissionController` (bounded run
  queue, shedding policy);
- a pool of ``workers`` session slots executes admitted requests; the
  engine runs on its *own* virtual clock, and the measured service
  demand (including per-request retries and backoff) is what occupies
  the slot in simulation time;
- per-request deadlines cancel requests still queued when they expire;
  requests that complete after their deadline count as ``late``, not
  good;
- injected faults (:mod:`repro.faults`) fire inside the engine exactly
  as in single-session campaigns, scoped per session via
  :meth:`~repro.faults.FaultInjector.scoped` so a fault plan can target
  a subset of the traffic.

The simulation stops at the traffic horizon: work still queued or in
flight is recorded as ``unfinished`` rather than silently measured
past the declared window — which is what makes the throughput-vs-load
curve honest about saturation.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Mapping, Optional, Tuple

from repro.db.engine import Engine
from repro.db.parser import normalize_sql
from repro.errors import FaultError, RetryExhaustedError, ServeError
from repro.faults import FaultInjector
from repro.measurement.clocks import VirtualClock
from repro.measurement.retry import RetryPolicy, execute_with_retry
from repro.measurement.stats import Percentiles, percentiles
from repro.obs import emit_event, maybe_span
from repro.serve.admission import (
    ADMITTED,
    DEGRADED,
    AdmissionConfig,
    AdmissionController,
)
from repro.serve.breaker import (
    BreakerConfig,
    BreakerTransition,
    CircuitBreaker,
)
from repro.serve.loop import EventLoop
from repro.serve.traffic import ClosedLoopTraffic, OpenLoopTraffic

#: Request outcomes.  "Good" service is exactly the ``ok`` status:
#: a complete, fresh result delivered within the deadline.
STATUS_OK = "ok"                 # completed in time
STATUS_LATE = "late"             # completed after the deadline
STATUS_DEGRADED = "degraded"     # answered stale from the result cache
STATUS_REJECTED = "rejected"     # turned away at admission
STATUS_SHED = "shed"             # evicted from the queue (shed-oldest)
STATUS_EXPIRED = "expired"       # deadline fired while still queued
STATUS_FAILED = "failed"         # engine error survived the retries
STATUS_BREAKER = "breaker-open"  # failed fast by the open breaker
STATUS_UNFINISHED = "unfinished"  # still queued/running at the horizon

ALL_STATUSES = (STATUS_OK, STATUS_LATE, STATUS_DEGRADED,
                STATUS_REJECTED, STATUS_SHED, STATUS_EXPIRED,
                STATUS_FAILED, STATUS_BREAKER, STATUS_UNFINISHED)


@dataclass(frozen=True)
class ServeConfig:
    """How the server defends itself (or declines to).

    ``deadline_s`` doubles as the goodput SLO: a response slower than
    it is ``late`` even when nothing cancelled the request.
    ``cancel_expired`` additionally cancels requests whose deadline
    expires while they are still queued — protection, because the slot
    they would have burned goes to a request that can still make it.
    """

    workers: int = 2
    admission: AdmissionConfig = field(default_factory=AdmissionConfig)
    breaker: Optional[BreakerConfig] = field(
        default_factory=BreakerConfig)
    deadline_s: Optional[float] = 0.5
    cancel_expired: bool = True
    retry: Optional[RetryPolicy] = None
    #: Simulated cost of answering a degraded request from the result
    #: cache (a lookup plus shipping a stale result).
    degraded_cost_s: float = 0.0002

    def __post_init__(self):
        if self.workers < 1:
            raise ServeError(
                f"session pool needs >= 1 worker, got {self.workers}")
        if self.deadline_s is not None and self.deadline_s <= 0:
            raise ServeError(
                f"deadline must be positive, got {self.deadline_s}")
        if self.degraded_cost_s < 0:
            raise ServeError(
                f"degraded response cost must be >= 0, got "
                f"{self.degraded_cost_s}")
        if self.cancel_expired and self.deadline_s is None:
            raise ServeError(
                "cancel_expired needs a deadline_s to cancel against")

    @classmethod
    def unprotected(cls, workers: int = 2,
                    deadline_s: Optional[float] = 0.5,
                    **overrides: Any) -> "ServeConfig":
        """The control condition: unbounded queue, no breaker, no
        cancellation — the deadline stays as a measurement SLO."""
        base: Dict[str, Any] = dict(
            workers=workers,
            admission=AdmissionConfig(policy="none", queue_limit=0),
            breaker=None, deadline_s=deadline_s, cancel_expired=False)
        base.update(overrides)
        return cls(**base)

    def describe(self) -> str:
        parts = [f"{self.workers} worker session(s)",
                 self.admission.describe()]
        parts.append("no breaker" if self.breaker is None
                     else self.breaker.describe())
        if self.deadline_s is not None:
            cancel = " (queued requests cancelled at expiry)" \
                if self.cancel_expired else ""
            parts.append(f"deadline {self.deadline_s * 1000:g}ms"
                         f"{cancel}")
        if self.retry is not None:
            parts.append(f"per-request retry: {self.retry.describe()}")
        return "; ".join(parts)


@dataclass
class _Request:
    """Mutable per-request state while the simulation runs."""

    rid: int
    session: str
    sql: str
    arrival_s: float
    deadline_s: Optional[float]        # absolute
    status: str = "pending"
    response_s: Optional[float] = None
    queue_wait_s: float = 0.0
    service_s: float = 0.0
    attempts: int = 0
    error: str = ""


@dataclass(frozen=True)
class RequestRecord:
    """One request's immutable outcome, for the report."""

    rid: int
    session: str
    arrival_s: float
    status: str
    latency_s: Optional[float]
    queue_wait_s: float
    service_s: float
    attempts: int
    error: str = ""


@dataclass(frozen=True)
class ServeReport:
    """Everything one serving run produced.

    ``throughput_per_s`` counts full executions delivered inside the
    horizon (on time or late); ``goodput_per_s`` only the on-time ones
    — the number an operator actually gets paid for.
    """

    name: str
    traffic: str
    config: str
    duration_s: float
    offered: int
    counts: Mapping[str, int]
    throughput_per_s: float
    goodput_per_s: float
    latency: Optional[Percentiles]
    queue_wait: Optional[Percentiles]
    breaker_transitions: Tuple[BreakerTransition, ...]
    faults_injected: int
    peak_queue_depth: int
    records: Tuple[RequestRecord, ...]

    @property
    def offered_rate_per_s(self) -> float:
        return self.offered / self.duration_s if self.duration_s else 0.0

    @property
    def n_good(self) -> int:
        return self.counts.get(STATUS_OK, 0)

    @property
    def n_served(self) -> int:
        """Full executions delivered inside the horizon."""
        return (self.counts.get(STATUS_OK, 0)
                + self.counts.get(STATUS_LATE, 0))

    def verdict(self) -> str:
        """Survival classification of this cell.

        - ``idle`` — no traffic arrived;
        - ``healthy`` — >= 95% of offered requests got good service;
        - ``degraded`` — >= 50% good, or >= 75% answered at all
          (including stale/degraded responses);
        - ``overloaded`` — anything worse.
        """
        if self.offered == 0:
            return "idle"
        good = self.n_good / self.offered
        answered = (self.n_good
                    + self.counts.get(STATUS_LATE, 0)
                    + self.counts.get(STATUS_DEGRADED, 0)) \
            / self.offered
        if good >= 0.95:
            return "healthy"
        if good >= 0.5 or answered >= 0.75:
            return "degraded"
        return "overloaded"

    def format(self) -> str:
        lines = [
            f"serving run {self.name!r}: {self.traffic}",
            f"  config: {self.config}",
            f"  offered {self.offered} requests "
            f"({self.offered_rate_per_s:.1f}/s) over "
            f"{self.duration_s:g}s -> throughput "
            f"{self.throughput_per_s:.1f}/s, goodput "
            f"{self.goodput_per_s:.1f}/s, verdict {self.verdict()}",
        ]
        observed = [(status, self.counts[status])
                    for status in ALL_STATUSES
                    if self.counts.get(status)]
        if observed:
            lines.append("  outcomes: " + ", ".join(
                f"{status}={count}" for status, count in observed))
        if self.latency is not None:
            lines.append("  latency " + self.latency.format(
                unit="ms", scale=1000.0))
        if self.queue_wait is not None:
            lines.append("  queue wait " + self.queue_wait.format(
                unit="ms", scale=1000.0))
        if self.faults_injected:
            lines.append(f"  faults injected: {self.faults_injected}")
        if self.breaker_transitions:
            lines.append("  breaker: " + "; ".join(
                t.format() for t in self.breaker_transitions))
        return "\n".join(lines)

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able summary (aggregate only, no per-request rows)."""
        return {
            "name": self.name,
            "traffic": self.traffic,
            "config": self.config,
            "duration_s": self.duration_s,
            "offered": self.offered,
            "offered_rate_per_s": self.offered_rate_per_s,
            "counts": {status: self.counts.get(status, 0)
                       for status in ALL_STATUSES},
            "throughput_per_s": self.throughput_per_s,
            "goodput_per_s": self.goodput_per_s,
            "latency": None if self.latency is None
            else self.latency.to_dict(),
            "queue_wait": None if self.queue_wait is None
            else self.queue_wait.to_dict(),
            "breaker_transitions": [
                [t.at_s, t.from_state, t.to_state, t.reason]
                for t in self.breaker_transitions],
            "faults_injected": self.faults_injected,
            "peak_queue_depth": self.peak_queue_depth,
            "verdict": self.verdict(),
        }


class ServingSimulation:
    """One seeded serving run of an engine under traffic (module doc).

    Parameters
    ----------
    engine:
        The MiniDB instance under test.  Must carry its *own*
        :class:`~repro.measurement.clocks.VirtualClock` (service demand
        is measured as that clock's delta per request); the simulation
        timeline is the event loop's separate clock.
    sqls:
        The query mix; request *i* issues ``sqls[i % len(sqls)]``.
    traffic:
        An :class:`~repro.serve.traffic.OpenLoopTraffic` or
        :class:`~repro.serve.traffic.ClosedLoopTraffic`.
    config:
        The :class:`ServeConfig` protection envelope.
    faults:
        Optional :class:`~repro.faults.FaultInjector`; must be the same
        injector the engine was built with (the simulation only adds
        per-session scoping around executions).
    """

    def __init__(self, engine: Engine, sqls: List[str],
                 traffic: "OpenLoopTraffic | ClosedLoopTraffic",
                 config: Optional[ServeConfig] = None,
                 faults: Optional[FaultInjector] = None,
                 name: str = "serve"):
        if not sqls:
            raise ServeError("the serving mix needs at least one query")
        self.engine = engine
        self.sqls = list(sqls)
        self.traffic = traffic
        self.config = config if config is not None else ServeConfig()
        self.faults = faults
        self.name = name
        self.loop = EventLoop()
        if engine.clock is self.loop.clock:
            raise ServeError(
                "the engine must keep a private clock; the simulation "
                "timeline belongs to the event loop")
        self.admission = AdmissionController(self.config.admission)
        self.breaker = None if self.config.breaker is None \
            else CircuitBreaker(self.config.breaker)
        self._requests: List[_Request] = []
        self._busy = 0
        self._cache: Dict[Any, bool] = {}
        self._on_response: Optional[Callable[[_Request], None]] = None
        self._faults_before = 0
        self._ran = False

    # -- lifecycle ---------------------------------------------------------

    def run(self) -> ServeReport:
        """Simulate the full horizon and summarise it."""
        if self._ran:
            raise ServeError(
                "a ServingSimulation is single-use; build a fresh one "
                "for every run")
        self._ran = True
        self._faults_before = self.faults.n_injected \
            if self.faults is not None else 0
        if isinstance(self.traffic, OpenLoopTraffic):
            for when, session in self.traffic.arrivals():
                self.loop.at(when,
                             self._make_arrival(when, session))
        else:
            self._start_closed_loop()
        self.loop.run(until=self.traffic.duration_s)
        self._close_out()
        return self._report()

    def _make_arrival(self, when: float,
                      session: str) -> Callable[[], None]:
        return lambda: self._arrive(session)

    def _start_closed_loop(self) -> None:
        traffic = self.traffic
        assert isinstance(traffic, ClosedLoopTraffic)
        rngs = traffic.client_rngs()

        def schedule_next(client: int) -> None:
            think = traffic.think_seconds(client, rngs[client])
            when = self.loop.now + think
            if when >= traffic.duration_s:
                return
            session = f"c{client}"

            def fire() -> None:
                request = self._arrive(session)
                if request.response_s is not None:
                    # Immediate response (rejected/degraded/breaker):
                    # the client thinks and comes back.
                    schedule_next(client)
                else:
                    self._client_waiters[request.rid] = client
            self.loop.at(when, fire)

        self._client_waiters: Dict[int, int] = {}
        self._schedule_next_for = schedule_next
        for client in range(traffic.n_clients):
            schedule_next(client)

    # -- request lifecycle -------------------------------------------------

    def _arrive(self, session: str) -> _Request:
        now = self.loop.now
        request = _Request(
            rid=len(self._requests), session=session,
            sql=self.sqls[len(self._requests) % len(self.sqls)],
            arrival_s=now,
            deadline_s=None if self.config.deadline_s is None
            else now + self.config.deadline_s)
        self._requests.append(request)
        emit_event("serve.arrival", rid=request.rid, session=session)
        if self.breaker is not None and not self.breaker.allow(now):
            self._respond(request, STATUS_BREAKER)
            return request
        request.status = "queued"
        cacheable = normalize_sql(request.sql) in self._cache
        outcome, evicted = self.admission.admit(request,
                                                cacheable=cacheable)
        if outcome == DEGRADED:
            self._respond_degraded(request)
            return request
        if outcome != ADMITTED:
            self._respond(request, STATUS_REJECTED)
            return request
        if evicted is not None:
            shed = evicted
            assert isinstance(shed, _Request)
            self._respond(shed, STATUS_SHED)
        if request.deadline_s is not None and self.config.cancel_expired:
            self.loop.at(request.deadline_s,
                         lambda: self._expire(request))
        self._dispatch()
        return request

    def _respond_degraded(self, request: _Request) -> None:
        cost = self.config.degraded_cost_s

        def deliver() -> None:
            self._respond(request, STATUS_DEGRADED)
        if cost > 0:
            self.loop.after(cost, deliver)
        else:
            deliver()

    def _expire(self, request: _Request) -> None:
        """Deadline fired; cancel the request if it is still queued."""
        if request.status != "queued":
            return
        if self.admission.remove(request):
            self._respond(request, STATUS_EXPIRED)

    def _dispatch(self) -> None:
        """Hand queued requests to free session slots."""
        while self._busy < self.config.workers:
            request = self.admission.pop_next()
            if request is None:
                return
            assert isinstance(request, _Request)
            self._start_service(request)

    def _start_service(self, request: _Request) -> None:
        now = self.loop.now
        self._busy += 1
        request.status = "executing"
        request.queue_wait_s = now - request.arrival_s
        ok, service_s, attempts, error = self._execute(request)
        request.service_s = service_s
        request.attempts = attempts
        request.error = error

        def complete() -> None:
            self._busy -= 1
            latency = self.loop.now - request.arrival_s
            if ok:
                if self.breaker is not None:
                    self.breaker.record_success(latency, self.loop.now)
                self._cache[normalize_sql(request.sql)] = True
                on_time = (request.deadline_s is None
                           or self.loop.now <= request.deadline_s)
                self._respond(request,
                              STATUS_OK if on_time else STATUS_LATE)
            else:
                if self.breaker is not None:
                    self.breaker.record_failure(self.loop.now)
                self._respond(request, STATUS_FAILED)
            self._dispatch()
        self.loop.after(service_s, complete)

    def _execute(self, request: _Request
                 ) -> Tuple[bool, float, int, str]:
        """Run the query on the engine; returns
        ``(ok, service_seconds, attempts, error)``.

        The engine's own clock measures the service demand, including
        any per-request retries and their simulated backoff.
        """
        engine_clock = self.engine.clock
        before = engine_clock.now

        def once() -> None:
            self.engine.execute(request.sql)

        with maybe_span("serve.request", "serve", rid=request.rid,
                        session=request.session,
                        queue_wait_ms=request.queue_wait_s * 1000.0
                        ) as span:
            attempts = 1
            ok = True
            error = ""
            try:
                if self.faults is not None:
                    with self.faults.scoped(request.session):
                        if self.config.retry is not None:
                            __, attempts = execute_with_retry(
                                once, self.config.retry,
                                clock=engine_clock,
                                label=f"req{request.rid}")
                        else:
                            once()
                elif self.config.retry is not None:
                    __, attempts = execute_with_retry(
                        once, self.config.retry, clock=engine_clock,
                        label=f"req{request.rid}")
                else:
                    once()
            except RetryExhaustedError as exc:
                ok = False
                attempts = exc.attempts
                error = type(exc.last_error).__name__ \
                    if exc.last_error is not None else "RetryExhausted"
            except FaultError as exc:
                ok = False
                error = type(exc).__name__
            service_s = engine_clock.now - before
            if isinstance(engine_clock, VirtualClock) and service_s <= 0:
                # A fault can fire before any simulated work is
                # charged; a zero-length service would stall the slot
                # accounting, so charge a minimal dispatch cost.
                service_s = 1e-6
            if span is not None:
                span.set(execute_ms=service_s * 1000.0, ok=ok,
                         attempts=attempts, error=error)
        return ok, service_s, attempts, error

    def _respond(self, request: _Request, status: str) -> None:
        request.status = status
        request.response_s = self.loop.now
        emit_event("serve.response", rid=request.rid, status=status,
                   latency_ms=(request.response_s - request.arrival_s)
                   * 1000.0)
        if isinstance(self.traffic, ClosedLoopTraffic):
            client = self._client_waiters.pop(request.rid, None)
            if client is not None:
                self._schedule_next_for(client)

    def _close_out(self) -> None:
        """Mark everything still pending at the horizon."""
        for request in self._requests:
            if request.response_s is None:
                request.status = STATUS_UNFINISHED

    # -- summary -----------------------------------------------------------

    def _report(self) -> ServeReport:
        duration = self.traffic.duration_s
        counts: Dict[str, int] = {}
        latencies: List[float] = []
        waits: List[float] = []
        records: List[RequestRecord] = []
        for request in self._requests:
            counts[request.status] = counts.get(request.status, 0) + 1
            latency = None if request.response_s is None \
                else request.response_s - request.arrival_s
            if request.status in (STATUS_OK, STATUS_LATE):
                latencies.append(latency if latency is not None
                                 else 0.0)
                waits.append(request.queue_wait_s)
            records.append(RequestRecord(
                rid=request.rid, session=request.session,
                arrival_s=request.arrival_s, status=request.status,
                latency_s=latency, queue_wait_s=request.queue_wait_s,
                service_s=request.service_s,
                attempts=request.attempts, error=request.error))
        served = counts.get(STATUS_OK, 0) + counts.get(STATUS_LATE, 0)
        good = counts.get(STATUS_OK, 0)
        faults_fired = 0 if self.faults is None \
            else self.faults.n_injected - self._faults_before
        return ServeReport(
            name=self.name,
            traffic=self.traffic.describe(),
            config=self.config.describe(),
            duration_s=duration,
            offered=len(self._requests),
            counts=counts,
            throughput_per_s=served / duration,
            goodput_per_s=good / duration,
            latency=percentiles(latencies) if latencies else None,
            queue_wait=percentiles(waits) if waits else None,
            breaker_transitions=()
            if self.breaker is None
            else tuple(self.breaker.transitions),
            faults_injected=faults_fired,
            peak_queue_depth=self.admission.peak_depth,
            records=tuple(records))
