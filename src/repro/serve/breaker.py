"""A circuit breaker in front of the engine: fail fast, probe, recover.

When the engine is *broken* — a fault burst, a latency collapse — the
worst thing a serving layer can do is keep feeding it: every queued
request burns a worker slot to produce another error, and the queue
behind it blows every deadline.  The breaker watches a sliding window
of recent outcomes and trips **open** when the error rate or the
latency-SLO breach rate crosses its threshold; open, it fails requests
immediately (they never reach the engine).  After a cooldown it goes
**half-open** and lets a bounded number of probe requests through: all
probes succeeding closes the circuit, any probe failing re-opens it
with a fresh cooldown.  All transitions happen in simulated time and
are recorded, so a campaign report can show exactly when and why the
breaker acted.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.errors import ServeError
from repro.obs import emit_event

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


@dataclass(frozen=True)
class BreakerConfig:
    """Thresholds and timing of the circuit breaker.

    ``latency_slo_s`` is optional: without it the breaker trips on
    error rate only.  ``min_samples`` keeps a cold window from tripping
    on its first unlucky request.
    """

    window: int = 20
    min_samples: int = 8
    error_rate_threshold: float = 0.5
    latency_slo_s: Optional[float] = None
    slo_breach_threshold: float = 0.75
    cooldown_s: float = 0.5
    half_open_probes: int = 2

    def __post_init__(self):
        if self.window < 1:
            raise ServeError(
                f"breaker window must be >= 1, got {self.window}")
        if not 1 <= self.min_samples <= self.window:
            raise ServeError(
                f"min_samples must be in [1, window={self.window}], "
                f"got {self.min_samples}")
        for name in ("error_rate_threshold", "slo_breach_threshold"):
            value = getattr(self, name)
            if not 0 < value <= 1:
                raise ServeError(
                    f"{name} must be in (0, 1], got {value}")
        if self.latency_slo_s is not None and self.latency_slo_s <= 0:
            raise ServeError(
                f"latency SLO must be positive, got "
                f"{self.latency_slo_s}")
        if self.cooldown_s <= 0:
            raise ServeError(
                f"breaker cooldown must be positive, got "
                f"{self.cooldown_s}")
        if self.half_open_probes < 1:
            raise ServeError(
                f"half-open probe budget must be >= 1, got "
                f"{self.half_open_probes}")

    def describe(self) -> str:
        slo = "" if self.latency_slo_s is None else (
            f", SLO {self.latency_slo_s * 1000:g}ms breach > "
            f"{self.slo_breach_threshold:.0%}")
        return (f"breaker: window {self.window}, error rate > "
                f"{self.error_rate_threshold:.0%}{slo}, cooldown "
                f"{self.cooldown_s:g}s, {self.half_open_probes} "
                "half-open probe(s)")


@dataclass(frozen=True)
class BreakerTransition:
    """One state change, stamped in simulated seconds."""

    at_s: float
    from_state: str
    to_state: str
    reason: str

    def format(self) -> str:
        return (f"t={self.at_s:.3f}s {self.from_state} -> "
                f"{self.to_state} ({self.reason})")


class CircuitBreaker:
    """The mutable breaker runtime (see module docstring)."""

    def __init__(self, config: Optional[BreakerConfig] = None):
        self.config = config if config is not None else BreakerConfig()
        self.state = CLOSED
        self.transitions: List[BreakerTransition] = []
        #: (ok, latency_s) of recent completed requests.
        self._window: Deque[Tuple[bool, float]] = deque(
            maxlen=self.config.window)
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._probes_succeeded = 0
        self.fast_failures = 0

    # -- state machine -----------------------------------------------------

    def _transition(self, to_state: str, now: float,
                    reason: str) -> None:
        self.transitions.append(BreakerTransition(
            at_s=now, from_state=self.state, to_state=to_state,
            reason=reason))
        emit_event("breaker.transition", at_s=now,
                   from_state=self.state, to_state=to_state,
                   reason=reason)
        self.state = to_state

    def _trip_reason(self) -> Optional[str]:
        """Why the window says to open, or None if it does not."""
        if len(self._window) < self.config.min_samples:
            return None
        failures = sum(1 for ok, __ in self._window if not ok)
        error_rate = failures / len(self._window)
        if error_rate > self.config.error_rate_threshold:
            return (f"error rate {error_rate:.0%} > "
                    f"{self.config.error_rate_threshold:.0%}")
        slo = self.config.latency_slo_s
        if slo is not None:
            breaches = sum(1 for ok, latency in self._window
                           if ok and latency > slo)
            breach_rate = breaches / len(self._window)
            if breach_rate > self.config.slo_breach_threshold:
                return (f"latency SLO breach rate {breach_rate:.0%} > "
                        f"{self.config.slo_breach_threshold:.0%}")
        return None

    def allow(self, now: float) -> bool:
        """May a request reach the engine at *now*?

        Open circuits fail fast (and count it); an expired cooldown
        moves the breaker to half-open, where only the probe budget
        passes.
        """
        if self.state == OPEN:
            if now - self._opened_at >= self.config.cooldown_s:
                self._transition(HALF_OPEN, now, "cooldown expired")
                self._probes_in_flight = 0
                self._probes_succeeded = 0
            else:
                self.fast_failures += 1
                return False
        if self.state == HALF_OPEN:
            if self._probes_in_flight >= self.config.half_open_probes:
                self.fast_failures += 1
                return False
            self._probes_in_flight += 1
            return True
        return True

    def record_success(self, latency_s: float, now: float) -> None:
        """A request completed successfully with *latency_s*."""
        if self.state == HALF_OPEN:
            self._probes_succeeded += 1
            if self._probes_succeeded >= self.config.half_open_probes:
                self._transition(CLOSED, now,
                                 f"{self._probes_succeeded} probe(s) "
                                 "succeeded")
                self._window.clear()
            return
        self._window.append((True, latency_s))
        reason = self._trip_reason()
        if reason is not None and self.state == CLOSED:
            self._open(now, reason)

    def record_failure(self, now: float) -> None:
        """A request reached the engine and failed."""
        if self.state == HALF_OPEN:
            self._open(now, "half-open probe failed")
            return
        self._window.append((False, 0.0))
        reason = self._trip_reason()
        if reason is not None and self.state == CLOSED:
            self._open(now, reason)

    def _open(self, now: float, reason: str) -> None:
        self._transition(OPEN, now, reason)
        self._opened_at = now
        self._window.clear()

    def format_transitions(self) -> str:
        if not self.transitions:
            return "breaker never tripped"
        return "\n".join(t.format() for t in self.transitions)
