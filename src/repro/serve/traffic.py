"""Traffic generators: open-loop arrival rates, closed-loop think times.

The difference between the two is the difference the paper's workload
section insists on declaring: an **open-loop** generator issues requests
at a Poisson arrival rate regardless of whether the server keeps up
(offered load is an independent variable; overload is possible), while
a **closed-loop** generator models N clients that each wait for their
response and think before the next request (offered load is bounded by
``clients / (response + think)``; overload shows up as latency, not
queue growth).  Mixing the two — a closed-loop client population with
an arrival rate — is a specification bug, and :func:`make_traffic`
rejects it eagerly instead of producing a plausible-looking curve for a
workload nobody declared.

Both generators are seeded and draw from private
:func:`numpy.random.default_rng` streams, so a traffic schedule is a
pure function of its configuration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple

import numpy as np

from repro.errors import ServeError

OPEN_LOOP = "open"
CLOSED_LOOP = "closed"


def _session_name(index: int) -> str:
    return f"s{index}"


@dataclass(frozen=True)
class OpenLoopTraffic:
    """Poisson arrivals at a fixed offered rate.

    ``sessions`` virtual sessions issue the requests round-robin, so
    per-session fault scoping and per-session spans have something to
    attach to even though arrivals are independent of responses.
    """

    arrival_rate: float          # requests per simulated second
    duration_s: float            # arrival horizon
    sessions: int = 4
    seed: int = 0

    kind = OPEN_LOOP

    def __post_init__(self):
        if self.arrival_rate < 0:
            raise ServeError(
                f"arrival rate must be >= 0 req/s, got "
                f"{self.arrival_rate}")
        if self.duration_s <= 0:
            raise ServeError(
                f"traffic duration must be positive, got "
                f"{self.duration_s}")
        if self.sessions < 1:
            raise ServeError(
                f"open-loop traffic needs >= 1 session, got "
                f"{self.sessions}")

    def arrivals(self) -> Iterator[Tuple[float, str]]:
        """Yield ``(arrival_time_s, session)`` pairs in time order."""
        if self.arrival_rate == 0:
            return
        rng = np.random.default_rng([self.seed & 0x7FFFFFFF, 0x0A11])
        t = 0.0
        index = 0
        while True:
            t += float(rng.exponential(1.0 / self.arrival_rate))
            if t >= self.duration_s:
                return
            yield t, _session_name(index % self.sessions)
            index += 1

    def describe(self) -> str:
        return (f"open-loop Poisson arrivals at "
                f"{self.arrival_rate:g} req/s over {self.duration_s:g}s "
                f"({self.sessions} sessions, seed={self.seed})")


@dataclass(frozen=True)
class ClosedLoopTraffic:
    """N clients, each waiting for its response then thinking.

    Think times are exponential with mean ``think_time_s`` (a constant
    zero think time is allowed and gives the classic batch-of-N
    closed system).  ``n_clients=0`` is the degenerate quiet system:
    valid, produces no requests.
    """

    n_clients: int
    think_time_s: float
    duration_s: float
    seed: int = 0

    kind = CLOSED_LOOP

    def __post_init__(self):
        if self.n_clients < 0:
            raise ServeError(
                f"client count must be >= 0, got {self.n_clients}")
        if self.think_time_s < 0:
            raise ServeError(
                f"think time must be >= 0 s, got {self.think_time_s}")
        if self.duration_s <= 0:
            raise ServeError(
                f"traffic duration must be positive, got "
                f"{self.duration_s}")

    def _rng(self, client: int) -> np.random.Generator:
        return np.random.default_rng(
            [self.seed & 0x7FFFFFFF, 0xC105ED, client])

    def think_seconds(self, client: int,
                      rng: np.random.Generator) -> float:
        """One think-time draw for *client* from its private stream."""
        if self.think_time_s == 0:
            return 0.0
        return float(rng.exponential(self.think_time_s))

    def client_rngs(self) -> Tuple[np.random.Generator, ...]:
        """One private think-time stream per client."""
        return tuple(self._rng(c) for c in range(self.n_clients))

    def describe(self) -> str:
        return (f"closed-loop, {self.n_clients} clients, mean think "
                f"{self.think_time_s:g}s over {self.duration_s:g}s "
                f"(seed={self.seed})")


Traffic = "OpenLoopTraffic | ClosedLoopTraffic"


def make_traffic(loop: str, duration_s: float, seed: int = 0,
                 clients: Optional[int] = None,
                 arrival_rate: Optional[float] = None,
                 think_time_s: Optional[float] = None
                 ) -> "OpenLoopTraffic | ClosedLoopTraffic":
    """Build a traffic generator, rejecting nonsensical combinations.

    This is the fail-fast surface behind ``repro.repeat.run --clients N
    --arrival-rate R``: a closed loop with an arrival rate, or an open
    loop with a think time, is refused with a diagnostic naming the
    contradiction rather than silently ignoring one of the knobs.
    """
    if loop == OPEN_LOOP:
        if think_time_s is not None:
            raise ServeError(
                "open-loop traffic is driven by an arrival rate; a "
                "think time belongs to closed-loop clients — drop "
                "think_time or use loop='closed'")
        if arrival_rate is None:
            raise ServeError(
                "open-loop traffic needs an arrival rate (req/s)")
        return OpenLoopTraffic(
            arrival_rate=arrival_rate, duration_s=duration_s,
            sessions=clients if clients is not None else 4, seed=seed)
    if loop == CLOSED_LOOP:
        if arrival_rate is not None:
            raise ServeError(
                "closed-loop traffic is driven by clients and think "
                "time; an arrival rate is an open-loop concept — drop "
                "arrival_rate or use loop='open'")
        if clients is None:
            raise ServeError(
                "closed-loop traffic needs a client count")
        return ClosedLoopTraffic(
            n_clients=clients,
            think_time_s=think_time_s if think_time_s is not None
            else 0.0,
            duration_s=duration_s, seed=seed)
    raise ServeError(
        f"unknown traffic loop {loop!r}; valid: "
        f"{OPEN_LOOP!r}, {CLOSED_LOOP!r}")
