"""Admission control: a bounded run queue with explicit shedding policies.

The tutorial's overload lesson is that *what a system does past its knee
is a design decision, not an accident* — and the decision must be
declared with the results.  :class:`AdmissionController` makes the three
classic decisions executable over one bounded FIFO run queue:

- ``reject`` — a full queue turns new arrivals away immediately
  (bounded waiting time for everyone admitted);
- ``shed-oldest`` — a full queue evicts its oldest waiter in favour of
  the newcomer (bounds staleness: the requests still queued are the
  most recent ones);
- ``degrade`` — a full queue answers the newcomer from the result
  cache when possible (stale-but-instant), rejecting only cache misses;
- ``none`` — the unbounded control condition: everything queues, and
  the latency curve is allowed to show why that is a bad idea.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Deque, List, Optional, Tuple

from repro.errors import ServeError

POLICIES: Tuple[str, ...] = ("none", "reject", "shed-oldest", "degrade")

#: Admission outcomes returned by :meth:`AdmissionController.admit`.
ADMITTED = "admitted"
REJECTED = "rejected"
DEGRADED = "degraded"


@dataclass(frozen=True)
class AdmissionConfig:
    """Run-queue bound and the policy applied when it is hit."""

    policy: str = "reject"
    queue_limit: int = 16

    def __post_init__(self):
        if self.policy not in POLICIES:
            raise ServeError(
                f"unknown admission policy {self.policy!r}; valid: "
                + ", ".join(repr(p) for p in POLICIES))
        if self.policy != "none" and self.queue_limit < 1:
            raise ServeError(
                f"a bounded run queue needs queue_limit >= 1, got "
                f"{self.queue_limit}")

    def describe(self) -> str:
        if self.policy == "none":
            return "admission: unbounded queue (no protection)"
        return (f"admission: {self.policy}, queue limit "
                f"{self.queue_limit}")


class AdmissionController:
    """The bounded FIFO run queue plus its shedding decision.

    The controller only *decides*; the server applies the decision
    (failing shed requests, serving degraded ones from its cache).
    ``admit`` returns ``(outcome, evicted)`` where ``evicted`` is the
    queue entry displaced by a ``shed-oldest`` admission, if any.
    """

    def __init__(self, config: AdmissionConfig):
        self.config = config
        self._queue: Deque[object] = deque()
        self.admitted = 0
        self.rejected = 0
        self.shed = 0
        self.degraded = 0
        self.peak_depth = 0

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def depth(self) -> int:
        return len(self._queue)

    def _full(self) -> bool:
        return (self.config.policy != "none"
                and len(self._queue) >= self.config.queue_limit)

    def admit(self, request: object,
              cacheable: bool = False
              ) -> Tuple[str, Optional[object]]:
        """Decide one arrival's fate; queue it when admitted.

        ``cacheable`` says whether a degraded (cached) response exists
        for this request, which is what the ``degrade`` policy sheds
        to.
        """
        if not self._full():
            self._queue.append(request)
            self.admitted += 1
            self.peak_depth = max(self.peak_depth, len(self._queue))
            return ADMITTED, None
        policy = self.config.policy
        if policy == "reject":
            self.rejected += 1
            return REJECTED, None
        if policy == "shed-oldest":
            evicted = self._queue.popleft()
            self.shed += 1
            self._queue.append(request)
            self.admitted += 1
            self.peak_depth = max(self.peak_depth, len(self._queue))
            return ADMITTED, evicted
        # degrade: answer from cache when possible, reject otherwise.
        if cacheable:
            self.degraded += 1
            return DEGRADED, None
        self.rejected += 1
        return REJECTED, None

    def pop_next(self) -> Optional[object]:
        """The next queued request in FIFO order, or None."""
        if not self._queue:
            return None
        return self._queue.popleft()

    def remove(self, request: object) -> bool:
        """Withdraw a queued request (deadline cancellation)."""
        try:
            self._queue.remove(request)
        except ValueError:
            return False
        return True

    def drain(self) -> List[object]:
        """Empty the queue, returning the abandoned requests."""
        remaining = list(self._queue)
        self._queue.clear()
        return remaining
