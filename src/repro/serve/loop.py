"""A deterministic discrete-event loop on the virtual clock.

The serving simulator needs *interleaving* — N clients whose requests
overlap in time — without giving up the repo's determinism guarantee.
:class:`EventLoop` provides it the classical way: a priority queue of
``(time, sequence, callback)`` entries, popped in time order with the
insertion sequence breaking ties, driving one
:class:`~repro.measurement.clocks.VirtualClock` forward to each event's
timestamp.  Two runs that schedule the same events in the same order
replay the same interleaving byte for byte; there are no threads, no
host-time reads, and nothing for the OS scheduler to perturb.
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional, Tuple

from repro.errors import ServeError
from repro.measurement.clocks import VirtualClock

#: An event loop callback; invoked with no arguments at its timestamp.
Callback = Callable[[], None]


class EventLoop:
    """A monotone, seeded-tie-break discrete-event scheduler.

    Parameters
    ----------
    clock:
        The simulation timeline.  Pass a shared
        :class:`~repro.measurement.clocks.VirtualClock` to keep the
        serving layer on the same timeline as other simulated
        components; by default the loop owns a fresh one.
    """

    def __init__(self, clock: Optional[VirtualClock] = None):
        self.clock = clock if clock is not None else VirtualClock()
        self._heap: List[Tuple[float, int, Callback]] = []
        self._sequence = 0
        self._processed = 0

    @property
    def now(self) -> float:
        """Current simulated time in seconds."""
        return self.clock.now

    @property
    def pending(self) -> int:
        """Events scheduled but not yet fired."""
        return len(self._heap)

    @property
    def processed(self) -> int:
        """Events fired so far."""
        return self._processed

    def at(self, when: float, callback: Callback) -> None:
        """Schedule *callback* at absolute simulated time *when*."""
        if when < self.now - 1e-12:
            raise ServeError(
                f"cannot schedule an event in the past: t={when:.6f}s "
                f"but the loop is at t={self.now:.6f}s")
        heapq.heappush(self._heap, (when, self._sequence, callback))
        self._sequence += 1

    def after(self, delay: float, callback: Callback) -> None:
        """Schedule *callback* ``delay`` seconds from now."""
        if delay < 0:
            raise ServeError(f"event delay must be >= 0, got {delay}")
        self.at(self.now + delay, callback)

    def run(self, until: Optional[float] = None) -> None:
        """Fire events in timestamp order.

        Runs until the queue drains, or — with *until* — until every
        event stamped at or before that time has fired (later events
        stay queued and the clock stops at *until*).
        """
        while self._heap:
            when, __, callback = self._heap[0]
            if until is not None and when > until:
                break
            heapq.heappop(self._heap)
            delta = when - self.now
            if delta > 0:
                # Simulation idle/queueing time is I/O-style waiting.
                self.clock.advance(io_seconds=delta)
            self._processed += 1
            callback()
        if until is not None and until > self.now:
            self.clock.advance(io_seconds=until - self.now)
