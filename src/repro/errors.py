"""Exception hierarchy for the :mod:`repro` framework.

Every error raised by the framework derives from :class:`ReproError` so that
callers can catch framework failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class DesignError(ReproError):
    """Invalid experiment design: bad factors, levels, or generators."""


class ConfoundingError(DesignError):
    """Invalid generator algebra in a fractional factorial design."""


class MeasurementError(ReproError):
    """A measurement could not be taken or is inconsistent."""


class ProtocolError(MeasurementError):
    """A run protocol was configured or applied incorrectly."""


class DatabaseError(ReproError):
    """Base class for MiniDB errors."""


class CatalogError(DatabaseError):
    """Unknown or duplicate table/column."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be parsed."""


class PlanError(DatabaseError):
    """A query plan is malformed or cannot be executed."""


class TypeMismatchError(DatabaseError):
    """An expression combines incompatible column types."""


class WorkloadError(ReproError):
    """A workload or data generator was configured incorrectly."""


class ConfigError(ReproError):
    """A configuration file or property set is invalid or missing."""


class SuiteError(ReproError):
    """An experiment suite is malformed or an experiment is unknown."""


class ChartError(ReproError):
    """A chart specification is structurally invalid."""


class GuidelineViolation(ChartError):
    """A chart violates one of the tutorial's presentation guidelines.

    Raised only when linting in ``strict`` mode; the default linter
    collects violations into a report instead.
    """


class HardwareModelError(ReproError):
    """A simulated hardware component was configured inconsistently."""


class ObservabilityError(ReproError):
    """The tracing/metrics layer was used inconsistently.

    Raised by :mod:`repro.obs` for structural mistakes — closing a span
    that is not innermost, exporting a trace with open spans, registering
    one metric name under two different types — never for anything in the
    measured workload itself: observability must not perturb the
    experiment it observes.
    """


class ParallelError(MeasurementError):
    """A sharded campaign could not be specified, executed, or merged.

    Raised by :mod:`repro.parallel` for structural problems — an
    unresolvable :class:`~repro.parallel.CampaignSpec` factory,
    non-serialisable campaign parameters, conflicting shard checkpoint
    journals, or a merge that would silently lose design points.  A
    design point that merely *fails* is not a ParallelError; it becomes
    a :class:`~repro.measurement.harness.FailedPoint` exactly as in the
    sequential harness.
    """


class ServeError(ReproError):
    """The concurrent serving layer was configured or driven wrongly.

    Raised by :mod:`repro.serve` for structural mistakes — a
    closed-loop traffic generator given an arrival rate, a bounded run
    queue with a non-positive limit, an unknown load-shedding policy —
    never for an individual request that merely fails under load or
    faults: those become explicit per-request outcomes in the
    :class:`~repro.serve.ServeReport`.
    """


class FaultError(ReproError):
    """Base class for injected faults and fault-handling failures.

    The fault-injection layer (:mod:`repro.faults`) raises subclasses of
    this from hooks inside the simulated stack; the resilient harness
    (:func:`repro.measurement.run_harness`) catches them, retries
    transient ones, and records the rest as failed design points.
    """


class TransientError(FaultError):
    """A recoverable fault: retrying the operation may succeed.

    The default :class:`~repro.measurement.retry.RetryPolicy` retries
    only :class:`TransientError` subclasses; anything else fails the
    design point immediately.
    """


class TransientDiskError(TransientError):
    """A disk read/write hiccup (the classic 'disk briefly went away')."""


class ClientDisconnectError(TransientError):
    """The server dropped the client connection mid-query."""


class QueryTimeoutError(TransientError):
    """The engine aborted a query that exceeded its time budget."""


class PageCorruptionError(FaultError):
    """A buffered page failed its checksum: *not* transient.

    Retrying re-reads the same corrupt page, so the retry machinery
    treats this as a permanent failure of the design point.
    """


class RetryExhaustedError(FaultError):
    """Every attempt allowed by a retry policy failed.

    Attributes
    ----------
    attempts:
        How many attempts were made before giving up.
    last_error:
        The exception raised by the final attempt.
    """

    def __init__(self, message: str, attempts: int = 0,
                 last_error: "BaseException | None" = None):
        super().__init__(message)
        self.attempts = attempts
        self.last_error = last_error


class TimeoutExceededError(FaultError):
    """A measured run overran the harness's per-run timeout.

    Detected against the active clock (simulated or real) by the run
    protocol, unlike :class:`QueryTimeoutError` which the engine itself
    injects.  Retryable by default: a slow run may have been hit by an
    injected or real interference event.
    """
