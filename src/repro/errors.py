"""Exception hierarchy for the :mod:`repro` framework.

Every error raised by the framework derives from :class:`ReproError` so that
callers can catch framework failures with a single ``except`` clause while
still distinguishing the subsystem that failed.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro framework."""


class DesignError(ReproError):
    """Invalid experiment design: bad factors, levels, or generators."""


class ConfoundingError(DesignError):
    """Invalid generator algebra in a fractional factorial design."""


class MeasurementError(ReproError):
    """A measurement could not be taken or is inconsistent."""


class ProtocolError(MeasurementError):
    """A run protocol was configured or applied incorrectly."""


class DatabaseError(ReproError):
    """Base class for MiniDB errors."""


class CatalogError(DatabaseError):
    """Unknown or duplicate table/column."""


class SqlSyntaxError(DatabaseError):
    """The SQL text could not be parsed."""


class PlanError(DatabaseError):
    """A query plan is malformed or cannot be executed."""


class TypeMismatchError(DatabaseError):
    """An expression combines incompatible column types."""


class WorkloadError(ReproError):
    """A workload or data generator was configured incorrectly."""


class ConfigError(ReproError):
    """A configuration file or property set is invalid or missing."""


class SuiteError(ReproError):
    """An experiment suite is malformed or an experiment is unknown."""


class ChartError(ReproError):
    """A chart specification is structurally invalid."""


class GuidelineViolation(ChartError):
    """A chart violates one of the tutorial's presentation guidelines.

    Raised only when linting in ``strict`` mode; the default linter
    collects violations into a report instead.
    """


class HardwareModelError(ReproError):
    """A simulated hardware component was configured inconsistently."""
