"""The tracer: nested spans stamped from the active (simulated) clock.

A :class:`Tracer` turns the paper's "explain where the time went" advice
into plumbing: code under measurement opens nested spans with
``with tracer.span("engine.execute", "engine"): ...`` and the tracer
stamps start/end from *its clock* — a
:class:`~repro.measurement.clocks.VirtualClock` in every simulated
campaign, so traces are deterministic and replayable.

Instrumented library code never holds a tracer reference.  It calls the
module-level helpers :func:`maybe_span` and :func:`emit_event`, which
consult the *active tracer stack* (:func:`current_tracer`) and reduce to
a cheap no-op when tracing is off — the overhead discipline
``benchmarks/bench_e22_trace_overhead.py`` enforces.  A tracer becomes
active inside ``with tracer.activate(): ...`` (the harness does this for
a whole campaign).

When the tracer is given a :class:`~repro.hardware.counters.
HardwareCounters` bundle, every closing span is annotated with the
counter deltas it covered (``hw.*`` attributes, children included;
``hw_self.*`` attributes, children excluded) and a
:class:`~repro.obs.metrics.MetricsRegistry` — when attached — absorbs
the *self* deltas (children excluded), so campaign totals are never
double-counted.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import TYPE_CHECKING, Any, Dict, Iterator, List, Optional

from repro.errors import ObservabilityError
from repro.obs.metrics import MetricsRegistry
from repro.obs.span import Span, SpanEvent, Trace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.hardware.counters import HardwareCounters
    from repro.measurement.clocks import Clock

#: The stack of active tracers; the innermost one receives spans/events
#: from instrumented library code.  A plain module-level stack (rather
#: than a contextvar) is deliberate: campaigns are single-threaded and
#: the stack must behave identically across replays.
_ACTIVE: List["Tracer"] = []


def current_tracer() -> Optional["Tracer"]:
    """The innermost active tracer, or None when tracing is off."""
    return _ACTIVE[-1] if _ACTIVE else None


@contextmanager
def maybe_span(name: str, category: str = "",
               **attributes: Any) -> Iterator[Optional[Span]]:
    """A span on the active tracer — or a no-op when tracing is off.

    This is the one helper instrumented modules import; it yields the
    open :class:`Span` (for attaching attributes) or ``None``.
    """
    tracer = current_tracer()
    if tracer is None:
        yield None
        return
    with tracer.span(name, category, **attributes) as span:
        yield span


def emit_event(name: str, **attributes: Any) -> None:
    """Attach an event to the active tracer's current span (or no-op)."""
    tracer = current_tracer()
    if tracer is not None:
        tracer.event(name, **attributes)


class _OpenSpan:
    """Book-keeping for one open span on the tracer stack."""

    __slots__ = ("span", "hw_snapshot", "child_hw")

    def __init__(self, span: Span,
                 hw_snapshot: Optional[Dict[str, int]]):
        self.span = span
        self.hw_snapshot = hw_snapshot
        self.child_hw: Dict[str, int] = {}


class Tracer:
    """Produces nested, clock-stamped spans for one campaign.

    Parameters
    ----------
    clock:
        Timestamp source.  Pass the campaign's shared
        :class:`~repro.measurement.clocks.VirtualClock` for
        deterministic, replayable traces; defaults to a
        :class:`~repro.measurement.clocks.ProcessClock` (real time).
    registry:
        Optional :class:`~repro.obs.metrics.MetricsRegistry`; every
        closing span contributes ``spans.<category>`` counts,
        ``span_ms.<category>`` duration histograms, and (with *counters*
        attached) ``hw.*`` event totals.
    counters:
        Optional :class:`~repro.hardware.counters.HardwareCounters` to
        snapshot around spans.  Swap per design point with
        :meth:`attach_counters` when workloads rebuild their engine.
    """

    def __init__(self, clock: "Optional[Clock]" = None,
                 registry: Optional[MetricsRegistry] = None,
                 counters: "Optional[HardwareCounters]" = None):
        if clock is None:
            # Imported lazily: repro.measurement is instrumented with
            # this module, so a top-level import would be circular.
            from repro.measurement.clocks import ProcessClock
            clock = ProcessClock()
        self.clock = clock
        self.registry = registry
        self._counters = counters
        self._spans: List[Span] = []
        self._stack: List[_OpenSpan] = []
        self._orphan_events: List[SpanEvent] = []
        self._next_id = 1

    # -- wiring ------------------------------------------------------------

    def attach_counters(
            self, counters: "Optional[HardwareCounters]") -> None:
        """Point hardware-delta absorption at a (new) counter bundle.

        Snapshots taken by spans still open belong to the old bundle
        and are discarded — a span spanning a counter swap reports no
        ``hw.*`` deltas rather than nonsense ones.
        """
        self._counters = counters
        for entry in self._stack:
            entry.hw_snapshot = None

    @contextmanager
    def activate(self) -> Iterator["Tracer"]:
        """Make this the tracer :func:`maybe_span` / :func:`emit_event`
        target for the dynamic extent of the ``with`` block."""
        _ACTIVE.append(self)
        try:
            yield self
        finally:
            popped = _ACTIVE.pop()
            if popped is not self:  # pragma: no cover - defensive
                raise ObservabilityError(
                    "active tracer stack was corrupted")

    # -- spans -------------------------------------------------------------

    def start_span(self, name: str, category: str = "",
                   **attributes: Any) -> Span:
        """Open a span; prefer the :meth:`span` context manager."""
        now = self.clock.sample().real
        parent = self._stack[-1].span.span_id if self._stack else None
        span = Span(span_id=self._next_id, parent_id=parent, name=name,
                    category=category, start_s=now, attributes=attributes)
        self._next_id += 1
        snapshot = dict(self._counters.snapshot()) \
            if self._counters is not None else None
        self._spans.append(span)
        self._stack.append(_OpenSpan(span, snapshot))
        return span

    def end_span(self, span: Span) -> Span:
        """Close *span*, which must be the innermost open one."""
        if not self._stack or self._stack[-1].span is not span:
            open_name = self._stack[-1].span.name if self._stack \
                else "<none>"
            raise ObservabilityError(
                f"cannot close span {span.name!r}: innermost open span "
                f"is {open_name!r} (spans must nest)")
        entry = self._stack.pop()
        span.end_s = self.clock.sample().real
        self._absorb(entry)
        return span

    @contextmanager
    def span(self, name: str, category: str = "",
             **attributes: Any) -> Iterator[Span]:
        """Context manager: open a nested span, close it on exit.

        The span is closed even when the body raises (the fault is what
        the trace is *for*); the exception type is recorded as an
        ``error`` attribute before propagating.
        """
        opened = self.start_span(name, category, **attributes)
        try:
            yield opened
        except BaseException as exc:
            opened.set(error=type(exc).__name__)
            raise
        finally:
            self.end_span(opened)

    def event(self, name: str, **attributes: Any) -> SpanEvent:
        """Record a point-in-time event on the innermost open span.

        Events outside any span are kept as trace-level orphans rather
        than dropped — a fault that fires between spans is still data.
        """
        event = SpanEvent(name=name, t_s=self.clock.sample().real,
                          attributes=attributes)
        if self._stack:
            self._stack[-1].span.add_event(event)
        else:
            self._orphan_events.append(event)
        return event

    # -- hardware-delta absorption ------------------------------------------

    def _absorb(self, entry: _OpenSpan) -> None:
        span = entry.span
        if entry.hw_snapshot is not None and self._counters is not None:
            deltas = self._counters.since(entry.hw_snapshot)
            self_deltas = {name: delta - entry.child_hw.get(name, 0)
                           for name, delta in deltas.items()}
            for name, delta in deltas.items():
                if delta:
                    span.attributes[f"hw.{name}"] = delta
            # Exclusive deltas are also published on the span, so trace
            # consumers attributing work per operator (cost-model
            # calibration, per-span accounting) can read them directly
            # instead of re-deriving them — consuming the inclusive
            # ``hw.*`` numbers per span double-counts every nested
            # span's events into all of its ancestors.
            for name, delta in self_deltas.items():
                if delta > 0:
                    span.attributes[f"hw_self.{name}"] = delta
            if self.registry is not None:
                self.registry.absorb(
                    {k: v for k, v in self_deltas.items() if v > 0})
            if self._stack:
                parent = self._stack[-1]
                for name, delta in deltas.items():
                    parent.child_hw[name] = \
                        parent.child_hw.get(name, 0) + delta
        if self.registry is not None:
            cat = span.category or "uncategorized"
            self.registry.counter(f"spans.{cat}").inc()
            self.registry.histogram(f"span_ms.{cat}").observe(
                span.duration_ms)

    # -- results -----------------------------------------------------------

    @property
    def n_open(self) -> int:
        return len(self._stack)

    def trace(self) -> Trace:
        """Snapshot the finished timeline (refuses while spans are open)."""
        if self._stack:
            raise ObservabilityError(
                "cannot build a trace while spans are open: "
                f"{[e.span.name for e in self._stack]}")
        return Trace(tuple(self._spans), tuple(self._orphan_events))

    def reset(self) -> None:
        """Discard all spans/events (e.g. between contrast runs)."""
        if self._stack:
            raise ObservabilityError(
                "cannot reset a tracer with open spans")
        self._spans.clear()
        self._orphan_events.clear()
        self._next_id = 1
