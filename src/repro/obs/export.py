"""Trace exporters: JSON-lines span logs and Chrome ``trace_event`` files.

Two machine formats, one human one:

- :func:`write_jsonl` — one JSON object per span, append-friendly and
  diff-friendly.  Keys are sorted and floats serialised by ``json``
  round-trip rules, so identical seeded campaigns export *byte
  identical* files (the repeatability acceptance criterion).
- :func:`to_chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format understood by ``chrome://tracing`` and Perfetto: complete
  (``ph: "X"``) events with microsecond ``ts``/``dur`` plus instant
  (``ph: "i"``) events for span events such as retries and injected
  faults.
- the ASCII flamegraph lives with the other terminal renderings, in
  :func:`repro.viz.flamegraph.render_flamegraph`.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Any, Dict, List

from repro.obs.span import Trace

#: Synthetic process/thread ids: the whole simulated stack is one
#: process, and the deterministic single timeline is one thread.
TRACE_PID = 1
TRACE_TID = 1


def to_jsonl(trace: Trace) -> str:
    """The span log as JSON-lines text (one span per line, id order)."""
    lines = [json.dumps(span.to_dict(), sort_keys=True)
             for span in trace.spans]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(trace: Trace, path: "str | Path") -> Path:
    """Write the JSONL span log; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(to_jsonl(trace), encoding="utf-8")
    return target


def to_chrome_trace(trace: Trace,
                    process_name: str = "repro") -> Dict[str, Any]:
    """The trace as a Chrome/Perfetto ``trace_event`` object.

    Load the written file via ``chrome://tracing`` or
    https://ui.perfetto.dev to browse the campaign interactively.
    """
    events: List[Dict[str, Any]] = [{
        "name": "process_name", "ph": "M", "pid": TRACE_PID,
        "tid": TRACE_TID, "args": {"name": process_name},
    }]
    for span in trace.spans:
        args: Dict[str, Any] = {"span_id": span.span_id}
        args.update(span.attributes)
        events.append({
            "name": span.name,
            "cat": span.category or "uncategorized",
            "ph": "X",
            "ts": span.start_s * 1e6,
            "dur": span.duration_s * 1e6,
            "pid": TRACE_PID,
            "tid": TRACE_TID,
            "args": args,
        })
        for event in span.events:
            events.append({
                "name": event.name,
                "cat": span.category or "uncategorized",
                "ph": "i",
                "s": "t",
                "ts": event.t_s * 1e6,
                "pid": TRACE_PID,
                "tid": TRACE_TID,
                "args": dict(event.attributes),
            })
    for event in trace.orphan_events:
        events.append({
            "name": event.name, "cat": "orphan", "ph": "i", "s": "p",
            "ts": event.t_s * 1e6, "pid": TRACE_PID, "tid": TRACE_TID,
            "args": dict(event.attributes),
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(trace: Trace, path: "str | Path",
                       process_name: str = "repro") -> Path:
    """Write the Chrome trace JSON; returns the path written."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    payload = to_chrome_trace(trace, process_name=process_name)
    target.write_text(json.dumps(payload, sort_keys=True),
                      encoding="utf-8")
    return target
