"""Observability: cross-layer tracing, metrics, and trace export.

The tutorial's core discipline is that a performance number you cannot
*explain* is a number you cannot trust (slides 28/47/54).  ``repro.obs``
makes a whole campaign explainable, not just a single query: a
:class:`Tracer` threads nested, clock-stamped :class:`Span`\\ s through
harness → protocol → retries → engine phases → operators → buffer pool →
disk, a :class:`MetricsRegistry` accumulates counts (including simulated
hardware-counter deltas absorbed per span), and exporters emit JSON-lines
span logs and Chrome ``trace_event`` files.  Traces taken on a
:class:`~repro.measurement.clocks.VirtualClock` are deterministic: the
same seed yields a byte-identical JSONL export.

See DESIGN.md's "Observability" section for the span taxonomy and the
overhead discussion.
"""

from repro.obs.export import (
    TRACE_PID,
    TRACE_TID,
    to_chrome_trace,
    to_jsonl,
    write_chrome_trace,
    write_jsonl,
)
from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.span import Span, SpanEvent, Trace
from repro.obs.tracer import (
    Tracer,
    current_tracer,
    emit_event,
    maybe_span,
)

__all__ = [
    "Counter",
    "DEFAULT_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "SpanEvent",
    "TRACE_PID",
    "TRACE_TID",
    "Trace",
    "Tracer",
    "current_tracer",
    "emit_event",
    "maybe_span",
    "to_chrome_trace",
    "to_jsonl",
    "write_chrome_trace",
    "write_jsonl",
]
