"""Spans and traces: the structured timeline of a campaign.

A :class:`Span` is one named, categorised interval on the active clock's
timeline — a harness design point, a protocol run, an engine phase, an
operator, a buffer-pool scan.  Spans nest (``parent_id``) and carry
attributes plus point-in-time :class:`SpanEvent`\\ s (a retry backoff, an
injected fault, a disk read).  A :class:`Trace` is the immutable bundle
of all closed spans of one campaign, ready for export
(:mod:`repro.obs.export`) or rendering
(:func:`repro.viz.flamegraph.render_flamegraph`).

Because every timestamp comes from the tracer's clock — a
:class:`~repro.measurement.clocks.VirtualClock` in all simulated
campaigns — and span ids are assigned sequentially, two identical seeded
campaigns produce *byte-identical* trace exports.  That determinism is
pinned by ``tests/integration/test_trace_determinism.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.errors import ObservabilityError


@dataclass(frozen=True)
class SpanEvent:
    """A point-in-time occurrence attached to a span."""

    name: str
    t_s: float
    attributes: Mapping[str, Any] = field(default_factory=dict)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "t_us": self.t_s * 1e6,
                "attrs": dict(self.attributes)}


class Span:
    """One named interval on the trace timeline.

    Mutable while open (attributes and events may still be attached);
    :class:`~repro.obs.tracer.Tracer` closes it by stamping ``end_s``.
    """

    __slots__ = ("span_id", "parent_id", "name", "category", "start_s",
                 "end_s", "attributes", "events")

    def __init__(self, span_id: int, parent_id: Optional[int], name: str,
                 category: str, start_s: float,
                 attributes: Optional[Dict[str, Any]] = None):
        if not name:
            raise ObservabilityError("a span needs a non-empty name")
        self.span_id = span_id
        self.parent_id = parent_id
        self.name = name
        self.category = category
        self.start_s = start_s
        self.end_s: Optional[float] = None
        self.attributes: Dict[str, Any] = dict(attributes or {})
        self.events: List[SpanEvent] = []

    # -- state -------------------------------------------------------------

    @property
    def is_open(self) -> bool:
        return self.end_s is None

    @property
    def duration_s(self) -> float:
        if self.end_s is None:
            raise ObservabilityError(
                f"span {self.name!r} is still open; no duration yet")
        return self.end_s - self.start_s

    @property
    def duration_ms(self) -> float:
        return self.duration_s * 1000.0

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; chainable."""
        self.attributes.update(attributes)
        return self

    def add_event(self, event: SpanEvent) -> None:
        self.events.append(event)

    # -- export ------------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able rendering (microsecond timestamps, Chrome-style)."""
        if self.end_s is None:
            raise ObservabilityError(
                f"cannot export open span {self.name!r}")
        return {
            "id": self.span_id,
            "parent": self.parent_id,
            "name": self.name,
            "cat": self.category,
            "start_us": self.start_s * 1e6,
            "dur_us": self.duration_s * 1e6,
            "attrs": dict(self.attributes),
            "events": [event.to_dict() for event in self.events],
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        state = "open" if self.is_open else f"{self.duration_ms:.3f}ms"
        return f"Span(#{self.span_id} {self.name!r} [{state}])"


class Trace:
    """The immutable result of one traced campaign: all closed spans.

    Spans are ordered by start time (the order the tracer opened them),
    which is also id order — stable across identical seeded runs.
    """

    def __init__(self, spans: Tuple[Span, ...],
                 orphan_events: Tuple[SpanEvent, ...] = ()):
        still_open = [span.name for span in spans if span.is_open]
        if still_open:
            raise ObservabilityError(
                f"trace contains open spans: {still_open}")
        self.spans = tuple(spans)
        self.orphan_events = tuple(orphan_events)
        self._by_id: Dict[int, Span] = {s.span_id: s for s in self.spans}
        self._children: Dict[Optional[int], List[Span]] = {}
        for span in self.spans:
            self._children.setdefault(span.parent_id, []).append(span)

    def __len__(self) -> int:
        return len(self.spans)

    def __iter__(self):
        return iter(self.spans)

    # -- structure ---------------------------------------------------------

    def roots(self) -> Tuple[Span, ...]:
        return tuple(self._children.get(None, ()))

    def children(self, span: Span) -> Tuple[Span, ...]:
        return tuple(self._children.get(span.span_id, ()))

    def parent(self, span: Span) -> Optional[Span]:
        if span.parent_id is None:
            return None
        return self._by_id[span.parent_id]

    def depth(self, span: Span) -> int:
        depth = 0
        while span.parent_id is not None:
            span = self._by_id[span.parent_id]
            depth += 1
        return depth

    def self_seconds(self, span: Span) -> float:
        """Span duration minus the time covered by its children."""
        covered = sum(child.duration_s for child in self.children(span))
        return max(0.0, span.duration_s - covered)

    # -- queries -----------------------------------------------------------

    def find(self, name: str) -> Tuple[Span, ...]:
        """All spans with exactly this name."""
        return tuple(s for s in self.spans if s.name == name)

    def category_spans(self, category: str) -> Tuple[Span, ...]:
        return tuple(s for s in self.spans if s.category == category)

    def categories(self) -> Tuple[str, ...]:
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span.category or "uncategorized", None)
        return tuple(seen)

    def events(self, name: Optional[str] = None) -> Tuple[SpanEvent, ...]:
        """Every event across all spans (optionally filtered by name)."""
        out: List[SpanEvent] = []
        for span in self.spans:
            out.extend(span.events)
        out.extend(self.orphan_events)
        if name is not None:
            out = [e for e in out if e.name == name]
        return tuple(out)

    @property
    def n_events(self) -> int:
        return len(self.events())

    @property
    def duration_s(self) -> float:
        """Wall-to-wall extent of the trace (0 for an empty trace)."""
        if not self.spans:
            return 0.0
        start = min(s.start_s for s in self.spans)
        end = max(s.end_s for s in self.spans)  # type: ignore[type-var]
        return end - start

    def category_self_ms(self) -> Dict[str, float]:
        """Self-time per category, in ms (the flamegraph's base facts)."""
        totals: Dict[str, float] = {}
        for span in self.spans:
            key = span.category or "uncategorized"
            totals[key] = totals.get(key, 0.0) + \
                self.self_seconds(span) * 1000.0
        return totals

    # -- reporting ---------------------------------------------------------

    def summary(self) -> str:
        """One line for methodology paragraphs and reports."""
        if not self.spans:
            return "empty trace"
        by_cat = self.category_self_ms()
        total = sum(by_cat.values()) or 1.0
        shares = ", ".join(
            f"{cat} {100.0 * ms / total:.0f}%"
            for cat, ms in sorted(by_cat.items(),
                                  key=lambda kv: -kv[1])[:4])
        return (f"{len(self.spans)} spans / {self.n_events} events over "
                f"{self.duration_s * 1000.0:.1f} simulated ms "
                f"(self-time: {shares})")

    def format(self) -> str:
        """Indented span tree with durations (debugging aid)."""
        lines: List[str] = []

        def walk(span: Span, indent: int) -> None:
            lines.append(f"{'  ' * indent}{span.name} "
                         f"[{span.category}] {span.duration_ms:.3f} ms")
            for event in span.events:
                lines.append(f"{'  ' * (indent + 1)}! {event.name} "
                             f"@ {event.t_s * 1000.0:.3f} ms")
            for child in self.children(span):
                walk(child, indent + 1)

        for root in self.roots():
            walk(root, 0)
        return "\n".join(lines)
