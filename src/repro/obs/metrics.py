"""A metrics registry: counters, gauges, histograms for campaigns.

Where spans (:mod:`repro.obs.span`) answer "where did the time go?",
metrics answer "how much of everything happened?": spans per category,
simulated hardware events (absorbed from
:class:`~repro.hardware.counters.HardwareCounters` deltas as spans
close), buffer hits, retries.  The registry is deliberately tiny and
deterministic — :meth:`MetricsRegistry.snapshot` returns plain sorted
dicts so two identical seeded campaigns snapshot identically.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from repro.errors import ObservabilityError

#: Default histogram bucket upper bounds (ms-oriented, exponential).
DEFAULT_BUCKETS: Tuple[float, ...] = (
    0.01, 0.1, 1.0, 10.0, 100.0, 1000.0, 10000.0)


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ObservabilityError(
                f"counter {self.name!r} only increases; got {amount}")
        self.value += amount


class Gauge:
    """A value that goes up and down (e.g. resident pages)."""

    __slots__ = ("name", "value")

    def __init__(self, name: str):
        self.name = name
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Observation counts in fixed exponential buckets, plus moments.

    ``buckets`` are upper bounds; an observation lands in the first
    bucket whose bound is >= the value, or in the implicit overflow
    bucket.
    """

    __slots__ = ("name", "buckets", "counts", "overflow", "n", "total",
                 "min", "max")

    def __init__(self, name: str,
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        if not buckets or list(buckets) != sorted(buckets):
            raise ObservabilityError(
                f"histogram {name!r} needs ascending bucket bounds, "
                f"got {list(buckets)}")
        self.name = name
        self.buckets = tuple(float(b) for b in buckets)
        self.counts = [0] * len(self.buckets)
        self.overflow = 0
        self.n = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        index = bisect_left(self.buckets, value)
        if index >= len(self.buckets):
            self.overflow += 1
        else:
            self.counts[index] += 1
        self.n += 1
        self.total += value
        self.min = min(self.min, value)
        self.max = max(self.max, value)

    @property
    def mean(self) -> float:
        return self.total / self.n if self.n else 0.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "n": self.n, "total": self.total, "mean": self.mean,
            "min": self.min if self.n else 0.0,
            "max": self.max if self.n else 0.0,
            "buckets": {f"le_{bound:g}": count for bound, count
                        in zip(self.buckets, self.counts)},
            "overflow": self.overflow,
        }


class MetricsRegistry:
    """Get-or-create registry of named counters, gauges, and histograms.

    One name maps to exactly one metric type; re-registering a name
    under a different type is a configuration error, not a silent alias.
    """

    def __init__(self):
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    def _check_free(self, name: str, kind: str) -> None:
        owners = {"counter": self._counters, "gauge": self._gauges,
                  "histogram": self._histograms}
        for other_kind, table in owners.items():
            if other_kind != kind and name in table:
                raise ObservabilityError(
                    f"metric {name!r} is already a {other_kind}; "
                    f"cannot re-register it as a {kind}")

    def counter(self, name: str) -> Counter:
        if name not in self._counters:
            self._check_free(name, "counter")
            self._counters[name] = Counter(name)
        return self._counters[name]

    def gauge(self, name: str) -> Gauge:
        if name not in self._gauges:
            self._check_free(name, "gauge")
            self._gauges[name] = Gauge(name)
        return self._gauges[name]

    def histogram(self, name: str,
                  buckets: Optional[Sequence[float]] = None) -> Histogram:
        if name not in self._histograms:
            self._check_free(name, "histogram")
            self._histograms[name] = Histogram(
                name, buckets if buckets is not None else DEFAULT_BUCKETS)
        return self._histograms[name]

    def absorb(self, deltas: Mapping[str, float],
               prefix: str = "hw.") -> None:
        """Add a bundle of event-count deltas as prefixed counters.

        This is how per-span :class:`~repro.hardware.counters.
        HardwareCounters` deltas accumulate into campaign totals; the
        tracer feeds *self* deltas (children excluded) so nothing is
        double-counted.
        """
        for name, delta in deltas.items():
            if delta:
                self.counter(f"{prefix}{name}").inc(delta)

    # -- reporting ---------------------------------------------------------

    def snapshot(self) -> Dict[str, Any]:
        """Plain sorted dict of every metric (deterministic)."""
        out: Dict[str, Any] = {}
        for name in sorted(self._counters):
            out[name] = self._counters[name].value
        for name in sorted(self._gauges):
            out[name] = self._gauges[name].value
        for name in sorted(self._histograms):
            out[name] = self._histograms[name].to_dict()
        return out

    def format(self) -> str:
        lines = ["metrics:"]
        for name in sorted(self._counters):
            lines.append(f"  {name:<32} {self._counters[name].value:>14g}")
        for name in sorted(self._gauges):
            lines.append(f"  {name:<32} {self._gauges[name].value:>14g} "
                         "(gauge)")
        for name in sorted(self._histograms):
            h = self._histograms[name]
            lines.append(f"  {name:<32} n={h.n} mean={h.mean:g} "
                         f"min={h.min if h.n else 0:g} "
                         f"max={h.max if h.n else 0:g}")
        return "\n".join(lines)
