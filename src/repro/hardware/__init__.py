"""Simulated hardware: caches, CPU generations, counters, builds, specs."""

from repro.hardware.cache import (
    CacheHierarchy,
    CacheLevel,
    CacheModel,
    DEFAULT_CACHE_MODEL,
)
from repro.hardware.compiler import (
    BuildMode,
    BuildModel,
    DEFAULT_DBG_FACTORS,
    OPERATION_CATEGORIES,
    dbg_opt_ratio,
)
from repro.hardware.counters import EVENTS, HardwareCounters
from repro.hardware.cpu import (
    CPU_GENERATIONS,
    CpuModel,
    ScanCost,
    cpu_by_name,
    max_scan_cost,
)
from repro.hardware.machine import (
    CpuSpec,
    DiskSpec,
    MachineSpec,
    NetworkSpec,
    SpecIssue,
    TUTORIAL_LAPTOP,
    check_spec_text,
)

__all__ = [
    "BuildMode",
    "BuildModel",
    "CPU_GENERATIONS",
    "CacheHierarchy",
    "CacheLevel",
    "CacheModel",
    "CpuModel",
    "CpuSpec",
    "DEFAULT_CACHE_MODEL",
    "DEFAULT_DBG_FACTORS",
    "DiskSpec",
    "EVENTS",
    "HardwareCounters",
    "MachineSpec",
    "NetworkSpec",
    "OPERATION_CATEGORIES",
    "ScanCost",
    "SpecIssue",
    "TUTORIAL_LAPTOP",
    "check_spec_text",
    "cpu_by_name",
    "dbg_opt_ratio",
    "max_scan_cost",
]
