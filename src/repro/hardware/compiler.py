"""Compiler build models: the DBG vs OPT war story (slides 37-41).

Two CWI colleagues compared an old and a new algorithm for days before
discovering one binary was compiled with optimization and the other
without — a factor of up to 2x.  :class:`BuildModel` encodes per-operation
overhead factors of a debug build relative to an optimized build, so MiniDB
can execute "the same query" under either build and reproduce the
tutorial's figure: the DBG/OPT ratio varies between ~1.1x and ~2.2x
depending on each query's operator mix.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import HardwareModelError


class BuildMode(enum.Enum):
    """Compiler configuration, after slide 40."""

    #: ``--enable-debug --disable-optimize --enable-assert`` (-g -O0).
    DBG = "dbg"
    #: ``--disable-debug --enable-optimize --disable-assert`` (-O6 ...).
    OPT = "opt"


#: Operation categories MiniDB charges work to.  Interpretation-heavy and
#: branch-heavy code suffers most from -O0; memory/I/O-bound code hardly
#: changes — exactly why the ratio varies per query.
OPERATION_CATEGORIES = (
    "scan",         # tight sequential loops: big -O win (unrolling, cse)
    "arithmetic",   # expression evaluation: big -O win
    "hash",         # hashing/probing: moderate win, memory-bound parts
    "sort",         # comparison-heavy: moderate-to-big win
    "string",       # string compares/LIKE: moderate win
    "io",           # disk transfer: no win (device-bound)
    "output",       # result formatting/printing: small win
)

#: Default DBG-over-OPT slowdown per category, calibrated so TPC-H-style
#: operator mixes land in the tutorial's observed [1.1, 2.2] band.
#: Tight compute loops (scans, expression evaluation) gain the most from
#: -O6; hash probing and sorting are partly memory-stall-bound, where the
#: compiler cannot help, so their factors are modest; I/O gains nothing.
DEFAULT_DBG_FACTORS: Mapping[str, float] = {
    "scan": 2.2,
    "arithmetic": 2.3,
    "hash": 1.3,
    "sort": 1.55,
    "string": 1.4,
    "io": 1.0,
    "output": 1.1,
}


@dataclass(frozen=True)
class BuildModel:
    """Scales per-category CPU work according to the build mode.

    An OPT build is the 1.0 baseline; a DBG build multiplies each
    category's CPU cost by its factor.  I/O cost is never scaled (the
    compiler cannot slow the disk down).
    """

    mode: BuildMode = BuildMode.OPT
    dbg_factors: Mapping[str, float] = field(
        default_factory=lambda: dict(DEFAULT_DBG_FACTORS))

    def __post_init__(self):
        unknown = [c for c in self.dbg_factors
                   if c not in OPERATION_CATEGORIES]
        if unknown:
            raise HardwareModelError(
                f"unknown operation categories {unknown}; "
                f"known: {list(OPERATION_CATEGORIES)}")
        bad = {c: f for c, f in self.dbg_factors.items() if f < 1.0}
        if bad:
            raise HardwareModelError(
                f"debug builds cannot be faster than optimized ones: {bad}")

    def factor(self, category: str) -> float:
        """Slowdown multiplier for one operation category."""
        if category not in OPERATION_CATEGORIES:
            raise HardwareModelError(
                f"unknown operation category {category!r}; "
                f"known: {list(OPERATION_CATEGORIES)}")
        if self.mode is BuildMode.OPT:
            return 1.0
        return float(self.dbg_factors.get(category, 1.0))

    def scale_cpu_ns(self, category: str, cpu_ns: float) -> float:
        """Apply the build's slowdown to a CPU cost."""
        if cpu_ns < 0:
            raise HardwareModelError("CPU cost must be >= 0")
        return cpu_ns * self.factor(category)

    def configure_flags(self) -> str:
        """The configure invocation of slide 40, for documentation."""
        if self.mode is BuildMode.DBG:
            return ("configure --enable-debug --disable-optimize "
                    "--enable-assert  # CFLAGS=-g -O0")
        return ("configure --disable-debug --enable-optimize "
                "--disable-assert  # CFLAGS=-O6 -funroll-loops ...")


def dbg_opt_ratio(workload_mix: Mapping[str, float],
                  dbg: BuildModel | None = None) -> float:
    """DBG/OPT runtime ratio for a workload with the given category mix.

    ``workload_mix`` maps category to its share of OPT runtime (shares
    must be positive and are normalised).  The ratio is the share-weighted
    mean of the category factors — structurally why different TPC-H
    queries land at different points of slide 41's figure.
    """
    if not workload_mix:
        raise HardwareModelError("workload mix cannot be empty")
    if any(v < 0 for v in workload_mix.values()):
        raise HardwareModelError("mix shares must be >= 0")
    total = sum(workload_mix.values())
    if total <= 0:
        raise HardwareModelError("mix shares must sum to a positive value")
    model = dbg if dbg is not None else BuildModel(mode=BuildMode.DBG)
    if model.mode is not BuildMode.DBG:
        raise HardwareModelError("dbg_opt_ratio needs a DBG build model")
    return sum(share / total * model.factor(category)
               for category, share in workload_mix.items())
