"""Hardware performance counters (PAPI-style), simulated.

Slide 47: standard profiling cannot explain the memory wall — "use
hardware performance counters to analyze cache-hits, -misses & memory
accesses (VTune, oprofile, perfctr, perfmon2, PAPI, PCL, ...)".  Our
simulated substrate exposes the same kind of event counts so analyses can
dissect CPU versus memory cost exactly as the tutorial demonstrates.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping

from repro.errors import HardwareModelError

#: Counter names, modelled after PAPI preset events.
EVENTS = (
    "cycles",          # PAPI_TOT_CYC
    "instructions",    # PAPI_TOT_INS
    "l1_hits",
    "l1_misses",       # PAPI_L1_DCM
    "l2_hits",
    "l2_misses",       # PAPI_L2_DCM
    "mem_accesses",    # loads+stores issued
    "io_reads",        # simulated disk page reads
    "io_writes",
)


@dataclass
class HardwareCounters:
    """A mutable bundle of event counts.

    Counters only ever increase; :meth:`snapshot` + :meth:`since` give the
    usual start/stop delta reading pattern.
    """

    counts: Dict[str, int] = field(
        default_factory=lambda: {name: 0 for name in EVENTS})

    def increment(self, event: str, amount: int = 1) -> None:
        if event not in self.counts:
            raise HardwareModelError(
                f"unknown counter {event!r}; known: {list(EVENTS)}")
        if amount < 0:
            raise HardwareModelError(
                f"counters only increase; got {amount} for {event!r}")
        self.counts[event] += amount

    def read(self, event: str) -> int:
        if event not in self.counts:
            raise HardwareModelError(
                f"unknown counter {event!r}; known: {list(EVENTS)}")
        return self.counts[event]

    def snapshot(self) -> Mapping[str, int]:
        """An immutable copy of all counts."""
        return dict(self.counts)

    def since(self, snapshot: Mapping[str, int]) -> Dict[str, int]:
        """Delta of every counter against an earlier snapshot.

        The snapshot must cover exactly the known counters — a partial
        or foreign mapping silently read as "everything started at 0"
        would fabricate deltas, so it is rejected instead.
        """
        missing = sorted(set(self.counts) - set(snapshot))
        extra = sorted(set(snapshot) - set(self.counts))
        if missing or extra:
            raise HardwareModelError(
                "snapshot does not match the counter bundle"
                + (f"; missing: {missing}" if missing else "")
                + (f"; unknown: {extra}" if extra else "")
                + f" — expected exactly {sorted(self.counts)}")
        return {name: self.counts[name] - snapshot[name]
                for name in self.counts}

    def reset(self) -> None:
        for name in self.counts:
            self.counts[name] = 0

    def miss_rate(self, level: int = 1) -> float:
        """Cache miss rate at L1 or L2 (0.0 when no accesses occurred)."""
        if level not in (1, 2):
            raise HardwareModelError(f"no cache level {level}")
        hits = self.counts[f"l{level}_hits"]
        misses = self.counts[f"l{level}_misses"]
        total = hits + misses
        return misses / total if total else 0.0

    def format(self) -> str:
        lines = ["hardware counters:"]
        for name in EVENTS:
            lines.append(f"  {name:<14} {self.counts[name]:>14,}")
        return "\n".join(lines)
