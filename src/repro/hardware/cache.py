"""A cache-hierarchy simulator for dissecting CPU vs memory cost.

The tutorial's memory-wall example (slides 46-51) shows that a simple
in-memory scan barely speeds up across a decade of 10x CPU clock
improvements because memory access cost dominates.  Explaining it needs a
model of cache hits and misses; this module provides one.

Two granularities are supported:

- :meth:`CacheHierarchy.access` — per-address LRU simulation (exact, used
  by tests and small workloads);
- :meth:`CacheHierarchy.sequential_scan` — closed-form accounting of a
  sequential scan of ``n`` items (used by the memory-wall benchmark and
  MiniDB's column scans, where per-address simulation would be too slow in
  pure Python).

Both update the same :class:`~repro.hardware.counters.HardwareCounters`
and report cost in nanoseconds.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.errors import HardwareModelError
from repro.hardware.counters import HardwareCounters


@dataclass(frozen=True)
class CacheLevel:
    """One cache level's geometry and hit latency.

    ``latency_ns`` is the cost of *serving* an access from this level.
    A fully-associative LRU replacement policy is simulated — simple and
    adequate for the sequential/random access patterns database operators
    produce.
    """

    name: str
    size_bytes: int
    line_bytes: int
    latency_ns: float

    def __post_init__(self):
        if self.size_bytes <= 0 or self.line_bytes <= 0:
            raise HardwareModelError(
                f"{self.name}: sizes must be positive")
        if self.size_bytes % self.line_bytes:
            raise HardwareModelError(
                f"{self.name}: size must be a multiple of the line size")
        if self.latency_ns < 0:
            raise HardwareModelError(f"{self.name}: latency must be >= 0")

    @property
    def n_lines(self) -> int:
        return self.size_bytes // self.line_bytes


class CacheHierarchy:
    """L1 [, L2, ...] backed by main memory.

    Parameters
    ----------
    levels:
        Cache levels ordered from closest (L1) to farthest.  Line sizes
        must be non-decreasing toward memory.
    memory_latency_ns:
        Cost of a main-memory access (the "memory wall" constant that
        clock speed does not improve).
    counters:
        Optional shared counter bundle; a fresh one is created otherwise.
    """

    def __init__(self, levels: Sequence[CacheLevel],
                 memory_latency_ns: float,
                 counters: Optional[HardwareCounters] = None):
        if not levels:
            raise HardwareModelError("need at least one cache level")
        if len(levels) > 2:
            raise HardwareModelError(
                "the simulator models at most two cache levels (L1, L2)")
        for near, far in zip(levels, levels[1:]):
            if near.line_bytes > far.line_bytes:
                raise HardwareModelError(
                    f"line size must not shrink toward memory "
                    f"({near.name}={near.line_bytes} > "
                    f"{far.name}={far.line_bytes})")
            if near.size_bytes > far.size_bytes:
                raise HardwareModelError(
                    f"capacity must not shrink toward memory "
                    f"({near.name} > {far.name})")
        if memory_latency_ns < 0:
            raise HardwareModelError("memory latency must be >= 0")
        self.levels = tuple(levels)
        self.memory_latency_ns = float(memory_latency_ns)
        self.counters = counters if counters is not None else HardwareCounters()
        self._lines: List[OrderedDict] = [OrderedDict() for _ in levels]

    # ------------------------------------------------------------- exact sim

    def access(self, address: int, size: int = 1) -> float:
        """Simulate a load of ``size`` bytes at ``address``; return ns.

        Every cache line touched is looked up level by level; a miss at
        the last level costs a memory access.  Lines are installed in
        every level on the way back (inclusive hierarchy).
        """
        if address < 0 or size <= 0:
            raise HardwareModelError(
                f"bad access address={address} size={size}")
        total_ns = 0.0
        line = self.levels[0].line_bytes
        first = address // line
        last = (address + size - 1) // line
        for line_no in range(first, last + 1):
            total_ns += self._access_line(line_no)
        return total_ns

    def _access_line(self, line_no: int) -> float:
        self.counters.increment("mem_accesses")
        for idx, level in enumerate(self.levels):
            # Translate the L1 line number to this level's line number.
            scale = level.line_bytes // self.levels[0].line_bytes
            key = line_no // scale
            store = self._lines[idx]
            if key in store:
                store.move_to_end(key)
                self.counters.increment(f"l{idx + 1}_hits")
                self._install(line_no, upto=idx)
                return level.latency_ns
            self.counters.increment(f"l{idx + 1}_misses")
        self._install(line_no, upto=len(self.levels) - 1)
        return self.memory_latency_ns

    def _install(self, line_no: int, upto: int) -> None:
        """Install the line into levels 0..upto (inclusive hierarchy)."""
        for idx in range(upto + 1):
            level = self.levels[idx]
            scale = level.line_bytes // self.levels[0].line_bytes
            key = line_no // scale
            store = self._lines[idx]
            store[key] = True
            store.move_to_end(key)
            while len(store) > level.n_lines:
                store.popitem(last=False)

    # -------------------------------------------------------- analytic model

    def sequential_scan(self, n_items: int, item_bytes: int,
                        already_cached: bool = False) -> float:
        """Closed-form cost (ns) of scanning ``n_items`` contiguous items.

        A sequential scan touches ``ceil(n*item/line)`` distinct lines per
        level.  If the data fits in a level and ``already_cached`` is
        true, accesses hit there; otherwise each new line costs a miss at
        every level it does not fit in, and the remaining accesses hit L1.
        Counters are updated to match the analytic counts.
        """
        if n_items < 0 or item_bytes <= 0:
            raise HardwareModelError(
                f"bad scan n_items={n_items} item_bytes={item_bytes}")
        if n_items == 0:
            return 0.0
        total_bytes = n_items * item_bytes
        self.counters.increment("mem_accesses", n_items)

        # Which level (if any) already holds the data?
        hit_level = None
        if already_cached:
            for idx, level in enumerate(self.levels):
                if total_bytes <= level.size_bytes:
                    hit_level = idx
                    break

        if hit_level is not None:
            level = self.levels[hit_level]
            for idx in range(hit_level):
                lines = -(-total_bytes // self.levels[idx].line_bytes)
                self.counters.increment(f"l{idx + 1}_misses", lines)
                self.counters.increment(
                    f"l{idx + 1}_hits", max(0, n_items - lines))
            lines = -(-total_bytes // level.line_bytes)
            self.counters.increment(f"l{hit_level + 1}_hits", n_items)
            return n_items * level.latency_ns

        # Data streams from memory: every new line is a full miss chain.
        l1 = self.levels[0]
        l1_lines = -(-total_bytes // l1.line_bytes)
        cost = 0.0
        for idx, level in enumerate(self.levels):
            lines = -(-total_bytes // level.line_bytes)
            self.counters.increment(f"l{idx + 1}_misses", lines)
        self.counters.increment("l1_hits", max(0, n_items - l1_lines))
        cost += l1_lines * self.memory_latency_ns
        cost += max(0, n_items - l1_lines) * l1.latency_ns
        return cost

    def random_accesses(self, n_accesses: int, working_set_bytes: int,
                        item_bytes: int = 8) -> float:
        """Closed-form cost (ns) of uniform random accesses.

        The hit level is the first cache the working set fits into; a
        working set larger than every cache pays memory latency on the
        miss fraction (approximated as capacity/working-set hits at the
        largest level).
        """
        if n_accesses < 0 or working_set_bytes <= 0:
            raise HardwareModelError("bad random access parameters")
        if n_accesses == 0:
            return 0.0
        self.counters.increment("mem_accesses", n_accesses)
        for idx, level in enumerate(self.levels):
            if working_set_bytes <= level.size_bytes:
                self.counters.increment(f"l{idx + 1}_hits", n_accesses)
                return n_accesses * level.latency_ns
            self.counters.increment(f"l{idx + 1}_misses", n_accesses)
        last = self.levels[-1]
        hit_fraction = min(1.0, last.size_bytes / working_set_bytes)
        hits = int(n_accesses * hit_fraction)
        misses = n_accesses - hits
        return hits * last.latency_ns + misses * self.memory_latency_ns

    def flush(self) -> None:
        """Empty every cache level (the cold state)."""
        for store in self._lines:
            store.clear()

    def resident_lines(self, level: int = 1) -> int:
        """How many lines the given level currently holds."""
        if not 1 <= level <= len(self.levels):
            raise HardwareModelError(f"no cache level {level}")
        return len(self._lines[level - 1])


@dataclass(frozen=True)
class CacheModel:
    """Hashable cache-geometry configuration.

    :class:`~repro.db.engine.EngineConfig` is a frozen dataclass, so the
    cache model the engine charges memory cost against must itself be
    hashable; a :class:`CacheHierarchy` (mutable LRU state) is built from
    it per engine via :meth:`hierarchy`.  The defaults follow the
    tutorial's Pentium M laptop (32 KB L1, 2 MB L2).
    """

    l1_kb: int = 32
    l2_kb: int = 2048
    line_bytes: int = 64
    l1_latency_ns: float = 2.0
    l2_latency_ns: float = 7.0
    memory_latency_ns: float = 150.0

    def __post_init__(self):
        if self.l1_kb <= 0 or self.l2_kb < self.l1_kb:
            raise HardwareModelError(
                f"bad cache geometry l1={self.l1_kb}KB l2={self.l2_kb}KB")
        if self.line_bytes <= 0:
            raise HardwareModelError("line_bytes must be positive")

    @property
    def l1_bytes(self) -> int:
        return self.l1_kb * 1024

    @property
    def l2_bytes(self) -> int:
        return self.l2_kb * 1024

    @classmethod
    def tutorial_laptop(cls) -> "CacheModel":
        """The geometry of :data:`~repro.hardware.machine.TUTORIAL_LAPTOP`."""
        from repro.hardware.machine import TUTORIAL_LAPTOP
        cpu = TUTORIAL_LAPTOP.cpu
        return cls(l1_kb=cpu.l1_cache_kb, l2_kb=cpu.l2_cache_kb)

    def hierarchy(self,
                  counters: Optional[HardwareCounters] = None
                  ) -> CacheHierarchy:
        return CacheHierarchy(
            [CacheLevel("L1", self.l1_bytes, self.line_bytes,
                        self.l1_latency_ns),
             CacheLevel("L2", self.l2_bytes, self.line_bytes,
                        self.l2_latency_ns)],
            memory_latency_ns=self.memory_latency_ns,
            counters=counters)


#: Geometry used when the optimizer costs cache effects and no engine-
#: level cache model is configured (plan costing needs *a* machine).
DEFAULT_CACHE_MODEL = CacheModel()
