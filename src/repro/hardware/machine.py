"""Machine specifications: neither under- nor over-specified.

Slides 149-155: "We use a machine with 3.4 GHz" is under-specified;
pasting 151 lines of ``lspci -v`` is over-specified.  The tutorial's
recommended level of detail is exactly what :class:`MachineSpec` captures:

- CPU: vendor, model, generation, clock speed, cache size(s);
- main memory size;
- disk size and speed;
- network type, speed, topology (when relevant).

:func:`check_spec_text` additionally lints free-text hardware
descriptions found in papers.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import HardwareModelError


@dataclass(frozen=True)
class CpuSpec:
    vendor: str
    model: str
    clock_ghz: float
    l1_cache_kb: int = 0
    l2_cache_kb: int = 0

    def __post_init__(self):
        if self.clock_ghz <= 0:
            raise HardwareModelError("clock speed must be positive")

    def describe(self) -> str:
        caches = []
        if self.l1_cache_kb:
            caches.append(f"{self.l1_cache_kb}KB L1 cache")
        if self.l2_cache_kb:
            if self.l2_cache_kb >= 1024:
                caches.append(f"{self.l2_cache_kb // 1024}MB L2 cache")
            else:
                caches.append(f"{self.l2_cache_kb}KB L2 cache")
        suffix = (", " + ", ".join(caches)) if caches else ""
        return f"{self.clock_ghz:g} GHz {self.vendor} {self.model}{suffix}"


@dataclass(frozen=True)
class DiskSpec:
    size_gb: float
    rpm: int = 0
    kind: str = "HDD"
    raid: str = ""

    def __post_init__(self):
        if self.size_gb <= 0:
            raise HardwareModelError("disk size must be positive")

    def describe(self) -> str:
        parts = [f"{self.size_gb:g}GB {self.kind}"]
        if self.rpm:
            parts.append(f"@ {self.rpm}RPM")
        if self.raid:
            parts.append(f"({self.raid})")
        return " ".join(parts)


@dataclass(frozen=True)
class NetworkSpec:
    kind: str
    speed_gbps: float
    topology: str = ""

    def describe(self) -> str:
        text = f"{self.speed_gbps:g}Gb {self.kind}"
        if self.topology:
            text += f", {self.topology}"
        return text


@dataclass(frozen=True)
class MachineSpec:
    """The tutorial-recommended hardware description (slide 155)."""

    cpu: CpuSpec
    memory_gb: float
    disk: DiskSpec
    network: Optional[NetworkSpec] = None

    def __post_init__(self):
        if self.memory_gb <= 0:
            raise HardwareModelError("memory size must be positive")

    def describe(self) -> str:
        """Multi-line, paper-ready hardware paragraph."""
        lines = [
            f"CPU:     {self.cpu.describe()}",
            f"Memory:  {self.memory_gb:g}GB RAM",
            f"Disk:    {self.disk.describe()}",
        ]
        if self.network is not None:
            lines.append(f"Network: {self.network.describe()}")
        return "\n".join(lines)


#: The tutorial's own measurement laptop (slides 23, 33).
TUTORIAL_LAPTOP = MachineSpec(
    cpu=CpuSpec(vendor="Intel", model="Pentium M (Dothan)", clock_ghz=1.5,
                l1_cache_kb=32, l2_cache_kb=2048),
    memory_gb=2.0,
    disk=DiskSpec(size_gb=120, rpm=5400, kind="Laptop ATA disk"),
)


@dataclass(frozen=True)
class SpecIssue:
    kind: str      # "under" or "over"
    detail: str


def check_spec_text(text: str) -> Tuple[SpecIssue, ...]:
    """Lint a free-text hardware description.

    Flags *under-specification* (mentions a clock speed but no CPU model,
    or no memory size, or no disk info) and *over-specification* (raw
    dumps: dozens of lines, lspci/cpuinfo noise like bus addresses or
    kernel driver lines).
    """
    issues: List[SpecIssue] = []
    lowered = text.lower()

    has_clock = bool(re.search(r"\d+(\.\d+)?\s*[gm]hz", lowered))
    has_model = bool(re.search(
        r"pentium|xeon|opteron|athlon|core|sparc|alpha|power|ryzen|epyc"
        r"|itanium|celeron|arm|r1[02]000", lowered))
    has_memory = bool(re.search(r"\d+\s*[gmt]b\s*(of\s*)?(ram|memory|main)",
                                lowered))
    has_disk = bool(re.search(r"disk|ssd|raid|rpm|nvme", lowered))
    has_cache = bool(re.search(r"\d+\s*[km]b\s*(l[123]\s*)?cache", lowered))

    if has_clock and not has_model:
        issues.append(SpecIssue(
            "under", "clock speed given without CPU vendor/model "
            "(slide 149: a '3.4 GHz machine' could be almost anything)"))
    if not has_memory:
        issues.append(SpecIssue("under", "main memory size missing"))
    if not has_disk:
        issues.append(SpecIssue("under", "disk size/speed missing"))
    if has_model and not has_cache:
        issues.append(SpecIssue("under", "CPU cache size(s) missing"))

    lines = [ln for ln in text.splitlines() if ln.strip()]
    if len(lines) > 40:
        issues.append(SpecIssue(
            "over", f"{len(lines)} lines of hardware description "
            "(slide 153: a raw lspci dump is over-specified)"))
    noise = re.findall(
        r"kernel driver|irq \d+|subsystem:|bus master|prefetchable"
        r"|bogomips|fdiv_bug|stepping", lowered)
    if noise:
        issues.append(SpecIssue(
            "over", "raw cpuinfo/lspci noise present "
            f"({len(noise)} matches, e.g. {noise[0]!r})"))
    return tuple(issues)
