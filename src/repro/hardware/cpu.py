"""CPU generation models for the memory-wall experiment.

Slides 46 and 51 plot the per-iteration cost of ``SELECT MAX(column)``
across five machines (1992 Sun LX ... 2000 Origin2000): clock speed
improved ~10x, yet total time per iteration barely moved because the
memory-access component stayed roughly constant.  :data:`CPU_GENERATIONS`
encodes those machines; :class:`CpuModel` converts instruction counts into
nanoseconds and pairs with a :class:`~repro.hardware.cache.CacheHierarchy`
configured with the machine's memory latency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

from repro.errors import HardwareModelError
from repro.hardware.cache import CacheHierarchy, CacheLevel


@dataclass(frozen=True)
class CpuModel:
    """A CPU's timing-relevant parameters.

    ``cpi`` is the average cycles-per-instruction for simple integer code;
    ``memory_latency_ns`` the cost of a DRAM access — the quantity that
    improved far slower than clock speed through the 1990s.
    """

    name: str
    year: int
    clock_mhz: float
    cpi: float
    memory_latency_ns: float
    l1_kb: int = 16
    l2_kb: int = 0          # 0 = no L2
    l1_latency_ns: float = 0.0   # derived from clock when 0
    system: str = ""

    def __post_init__(self):
        if self.clock_mhz <= 0 or self.cpi <= 0:
            raise HardwareModelError(
                f"{self.name}: clock and CPI must be positive")
        if self.memory_latency_ns <= 0:
            raise HardwareModelError(
                f"{self.name}: memory latency must be positive")

    @property
    def cycle_ns(self) -> float:
        """Duration of one clock cycle in nanoseconds."""
        return 1000.0 / self.clock_mhz

    def instruction_ns(self, n_instructions: float) -> float:
        """Pure-CPU cost of executing ``n`` simple instructions."""
        if n_instructions < 0:
            raise HardwareModelError("instruction count must be >= 0")
        return n_instructions * self.cpi * self.cycle_ns

    def build_hierarchy(self) -> CacheHierarchy:
        """A cache hierarchy calibrated to this machine."""
        l1_latency = self.l1_latency_ns or self.cycle_ns
        levels = [CacheLevel("L1", self.l1_kb * 1024, 32, l1_latency)]
        if self.l2_kb:
            levels.append(CacheLevel("L2", self.l2_kb * 1024, 64,
                                     max(l1_latency * 4, 4 * self.cycle_ns)))
        return CacheHierarchy(levels, self.memory_latency_ns)


#: The five machines of the tutorial's memory-wall figure (slide 46).
#: Clock speeds and years are from the slide; CPI and DRAM latencies are
#: period-typical values chosen so the figure's shape reproduces: CPU cost
#: per iteration shrinks ~10x while the memory component stays ~flat.
CPU_GENERATIONS: Tuple[CpuModel, ...] = (
    CpuModel(name="Sparc", year=1992, clock_mhz=50, cpi=1.6,
             memory_latency_ns=135.0, l1_kb=16, system="Sun LX"),
    CpuModel(name="UltraSparc", year=1996, clock_mhz=200, cpi=1.2,
             memory_latency_ns=120.0, l1_kb=16, l2_kb=512,
             system="Sun Ultra"),
    CpuModel(name="UltraSparcII", year=1997, clock_mhz=296, cpi=1.1,
             memory_latency_ns=115.0, l1_kb=16, l2_kb=1024,
             system="Sun Ultra"),
    CpuModel(name="Alpha", year=1998, clock_mhz=500, cpi=1.0,
             memory_latency_ns=110.0, l1_kb=64, l2_kb=4096,
             system="DEC Alpha"),
    CpuModel(name="R12000", year=2000, clock_mhz=300, cpi=1.0,
             memory_latency_ns=100.0, l1_kb=32, l2_kb=8192,
             system="Origin2000"),
)


def cpu_by_name(name: str) -> CpuModel:
    """Look up a catalogue CPU by name."""
    for cpu in CPU_GENERATIONS:
        if cpu.name == name:
            return cpu
    raise HardwareModelError(
        f"unknown CPU {name!r}; catalogue: "
        f"{[c.name for c in CPU_GENERATIONS]}")


@dataclass(frozen=True)
class ScanCost:
    """Dissected per-iteration cost of an in-memory scan on one machine."""

    cpu: CpuModel
    cpu_ns_per_iter: float
    memory_ns_per_iter: float

    @property
    def total_ns_per_iter(self) -> float:
        return self.cpu_ns_per_iter + self.memory_ns_per_iter


def max_scan_cost(cpu: CpuModel, n_items: int = 1_000_000,
                  item_bytes: int = 8,
                  instructions_per_iter: float = 4.0) -> ScanCost:
    """Per-iteration cost of ``SELECT MAX(column)`` over an array.

    The loop body (load, compare, branch, increment) costs
    ``instructions_per_iter`` instructions of pure CPU time; memory cost
    comes from the cache model streaming the column from DRAM.  Returns
    the dissection the tutorial's stacked-bar figure plots.
    """
    if n_items <= 0:
        raise HardwareModelError("n_items must be positive")
    hierarchy = cpu.build_hierarchy()
    memory_ns = hierarchy.sequential_scan(n_items, item_bytes,
                                          already_cached=False)
    cpu_ns = cpu.instruction_ns(instructions_per_iter * n_items)
    return ScanCost(cpu=cpu,
                    cpu_ns_per_iter=cpu_ns / n_items,
                    memory_ns_per_iter=memory_ns / n_items)
