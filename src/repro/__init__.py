"""repro — performance evaluation in database research, as a library.

A full reproduction of Manolescu & Manegold's tutorial *"Performance
Evaluation in Database Research: Principles and Experiences"*
(ICDE 2008 / EDBT 2009): the statistical experiment-design toolkit, a
measurement layer with hot/cold run protocols, the MiniDB column-store
substrate with simulated hardware, TPC-H-like workloads, a repeatability
harness, and a chart-guidelines linter.

Subpackages
-----------
- :mod:`repro.core` — factorial designs, effects, allocation of
  variation, confounding (the paper's methodological core);
- :mod:`repro.measurement` — clocks, timers, protocols, statistics;
- :mod:`repro.db` — MiniDB: storage, operators, SQL, EXPLAIN/PROFILE;
- :mod:`repro.faults` — seeded fault injection (failure noise) for the
  simulated stack;
- :mod:`repro.hardware` — caches, CPU generations, DBG/OPT builds;
- :mod:`repro.workloads` — generators, micro-benchmarks, TPC-H-like;
- :mod:`repro.parallel` — deterministic sharded campaign execution
  across worker processes;
- :mod:`repro.repeat` — properties, suites, manifests, archives;
- :mod:`repro.viz` — chart specs, guideline linting, gnuplot emission.

Quickstart::

    from repro.core import FactorSpace, TwoLevelFactorialDesign, two_level
    from repro.core import estimate_effects, allocate_variation

    space = FactorSpace([two_level("memory", "4MB", "16MB"),
                         two_level("cache", "1KB", "2KB")])
    design = TwoLevelFactorialDesign(space)
    model = estimate_effects(design, [15, 45, 25, 75])
    print(model.describe())   # y = 40 + 20*xmemory + 10*xcache + ...
"""

from repro import core, db, faults, hardware, measurement, parallel, \
    repeat, serve, viz, workloads
from repro.errors import (
    ChartError,
    ClientDisconnectError,
    ConfigError,
    ConfoundingError,
    DatabaseError,
    DesignError,
    FaultError,
    GuidelineViolation,
    HardwareModelError,
    MeasurementError,
    PageCorruptionError,
    ParallelError,
    PlanError,
    ProtocolError,
    QueryTimeoutError,
    ReproError,
    RetryExhaustedError,
    ServeError,
    SqlSyntaxError,
    SuiteError,
    TimeoutExceededError,
    TransientDiskError,
    TransientError,
    TypeMismatchError,
    WorkloadError,
)

__version__ = "1.0.0"

__all__ = [
    "ChartError",
    "ClientDisconnectError",
    "ConfigError",
    "ConfoundingError",
    "DatabaseError",
    "DesignError",
    "FaultError",
    "GuidelineViolation",
    "HardwareModelError",
    "MeasurementError",
    "PageCorruptionError",
    "ParallelError",
    "PlanError",
    "ProtocolError",
    "QueryTimeoutError",
    "ReproError",
    "RetryExhaustedError",
    "ServeError",
    "SqlSyntaxError",
    "SuiteError",
    "TimeoutExceededError",
    "TransientDiskError",
    "TransientError",
    "TypeMismatchError",
    "WorkloadError",
    "__version__",
    "core",
    "db",
    "faults",
    "hardware",
    "measurement",
    "parallel",
    "repeat",
    "serve",
    "viz",
    "workloads",
]
