"""Regression helpers for quantitative factors and scalability sweeps.

Two tools every performance study needs:

- :func:`linear_fit` — ordinary least squares ``y = a + b·x`` with R²,
  residuals, and a confidence interval on the slope (is the trend
  real?);
- :func:`fit_power_law` — fit ``y = c · x^k`` by log-log regression to
  estimate an operator's *empirical complexity* from a size sweep
  (k ≈ 1 for a scan, k ≈ 2 for a nested-loop join, ...).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.errors import MeasurementError


@dataclass(frozen=True)
class LinearFit:
    """An OLS line ``y = intercept + slope·x``."""

    intercept: float
    slope: float
    r_squared: float
    slope_stderr: float
    slope_ci: Tuple[float, float]
    n: int

    def predict(self, x: float) -> float:
        return self.intercept + self.slope * x

    @property
    def slope_significant(self) -> bool:
        """True if the slope's confidence interval excludes zero."""
        low, high = self.slope_ci
        return low > 0 or high < 0

    def format(self) -> str:
        low, high = self.slope_ci
        return (f"y = {self.intercept:.4g} + {self.slope:.4g}*x  "
                f"(R^2={self.r_squared:.4f}, slope CI "
                f"[{low:.4g}, {high:.4g}], n={self.n})")


def linear_fit(xs: Sequence[float], ys: Sequence[float],
               confidence: float = 0.95) -> LinearFit:
    """Ordinary least squares with a Student-t slope interval."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape:
        raise MeasurementError(
            f"x and y must have equal length ({x.size} vs {y.size})")
    if x.size < 3:
        raise MeasurementError("need at least 3 points for a fit")
    if not 0 < confidence < 1:
        raise MeasurementError("confidence must be in (0,1)")
    if np.allclose(x, x[0]):
        raise MeasurementError("x values are all identical")

    x_mean, y_mean = x.mean(), y.mean()
    sxx = float(((x - x_mean) ** 2).sum())
    sxy = float(((x - x_mean) * (y - y_mean)).sum())
    slope = sxy / sxx
    intercept = y_mean - slope * x_mean

    residuals = y - (intercept + slope * x)
    ss_res = float((residuals ** 2).sum())
    ss_tot = float(((y - y_mean) ** 2).sum())
    r_squared = 1.0 if ss_tot == 0 else 1.0 - ss_res / ss_tot

    dof = x.size - 2
    sigma2 = ss_res / dof
    slope_stderr = math.sqrt(sigma2 / sxx)
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    half = t * slope_stderr
    return LinearFit(intercept=intercept, slope=slope,
                     r_squared=r_squared, slope_stderr=slope_stderr,
                     slope_ci=(slope - half, slope + half), n=int(x.size))


@dataclass(frozen=True)
class PowerLawFit:
    """A fitted ``y = coefficient · x^exponent`` model."""

    coefficient: float
    exponent: float
    r_squared: float
    n: int

    def predict(self, x: float) -> float:
        if x <= 0:
            raise MeasurementError("power-law models need positive x")
        return self.coefficient * x ** self.exponent

    def classify(self, tolerance: float = 0.25) -> str:
        """Human label for the empirical complexity."""
        k = self.exponent
        for target, label in ((0.0, "constant"), (1.0, "linear"),
                              (2.0, "quadratic"), (3.0, "cubic")):
            if abs(k - target) <= tolerance:
                return label
        if abs(k - 1.0) <= 2 * tolerance:
            return "near-linear (n log n?)"
        return f"~n^{k:.2f}"

    def format(self) -> str:
        return (f"y = {self.coefficient:.4g} * x^{self.exponent:.3f}  "
                f"(R^2={self.r_squared:.4f}, looks {self.classify()})")


def fit_power_law(xs: Sequence[float], ys: Sequence[float]) -> PowerLawFit:
    """Estimate empirical complexity from a size sweep (log-log OLS)."""
    x = np.asarray(xs, dtype=float)
    y = np.asarray(ys, dtype=float)
    if x.shape != y.shape:
        raise MeasurementError("x and y must have equal length")
    if np.any(x <= 0) or np.any(y <= 0):
        raise MeasurementError("power-law fits need strictly positive data")
    fit = linear_fit(np.log(x), np.log(y))
    return PowerLawFit(coefficient=float(math.exp(fit.intercept)),
                       exponent=fit.slope, r_squared=fit.r_squared,
                       n=fit.n)
