"""Confounding (alias) analysis for 2^(k-p) fractional designs.

The tutorial (slides 104-109) works the ``D = ABC`` example: multiplying
both sides by columns and using ``X·X = I`` yields the *defining relation*
``I = ABCD`` and hence the alias pairs ``AD = BC``, ``A = BCD``, etc.
Designs whose defining words are long confound only high-order
interactions, which the "sparsity of effects" principle says are small —
so ``D = ABC`` (resolution IV) is preferred over ``D = AB``
(resolution III).

Effects are represented as frozensets of factor names; multiplication is
symmetric difference (``X·X = I``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Sequence, Set, Tuple

from repro.errors import ConfoundingError

#: The identity effect I.
IDENTITY: FrozenSet[str] = frozenset()


def effect(*factors: str) -> FrozenSet[str]:
    """Build an effect from factor names: ``effect('A','B')`` is AB."""
    return frozenset(factors)


def multiply(a: FrozenSet[str], b: FrozenSet[str]) -> FrozenSet[str]:
    """Effect product under ``X·X = I`` (symmetric difference)."""
    return a ^ b


def effect_name(e: FrozenSet[str]) -> str:
    """Render an effect the way the slides do: ``'I'``, ``'A'``, ``'ABC'``."""
    if not e:
        return "I"
    return "".join(sorted(e))


def parse_effect(text: str) -> FrozenSet[str]:
    """Parse a slide-style effect name (``'ABC'`` or ``'I'``).

    Each character is one factor, so this form only suits single-letter
    factor names; multi-letter factors should use :func:`effect` directly.
    """
    text = text.strip()
    if text in ("I", ""):
        return IDENTITY
    return frozenset(text)


def defining_relation(generators: Mapping[str, Iterable[str]]
                      ) -> Set[FrozenSet[str]]:
    """The defining contrast subgroup of a set of generators.

    Each generator ``D = ABC`` contributes the word ``ABCD`` (``I = ABCD``);
    the subgroup closes the words under multiplication and always contains
    I.  Size is ``2^p`` for ``p`` independent generators.
    """
    words: List[FrozenSet[str]] = []
    for new_factor, combo in generators.items():
        combo = frozenset(combo)
        if new_factor in combo:
            raise ConfoundingError(
                f"generator {new_factor!r} = {effect_name(combo)} "
                "references itself")
        if len(combo) < 2:
            raise ConfoundingError(
                f"generator for {new_factor!r} must involve at least two "
                "factors")
        words.append(combo | {new_factor})

    subgroup: Set[FrozenSet[str]] = {IDENTITY}
    for word in words:
        additions = {multiply(word, existing) for existing in subgroup}
        if additions & subgroup:
            overlap = additions & subgroup - {IDENTITY}
            if word in subgroup:
                raise ConfoundingError(
                    f"generator word {effect_name(word)} is not independent "
                    "of the previous generators")
        subgroup |= additions
    expected = 2 ** len(words)
    if len(subgroup) != expected:
        raise ConfoundingError(
            f"generators are not independent: subgroup has {len(subgroup)} "
            f"words, expected {expected}")
    return subgroup


def alias_set(e: FrozenSet[str],
              relation: Set[FrozenSet[str]]) -> Set[FrozenSet[str]]:
    """All effects confounded with *e* under the defining relation."""
    return {multiply(e, word) for word in relation}


def resolution(relation: Set[FrozenSet[str]]) -> int:
    """Design resolution: length of the shortest non-identity word."""
    lengths = [len(word) for word in relation if word]
    if not lengths:
        raise ConfoundingError(
            "the defining relation contains only I (no generators)")
    return min(lengths)


@dataclass(frozen=True)
class AliasStructure:
    """Complete alias analysis of a fractional design.

    Attributes
    ----------
    factor_names:
        All k factor names.
    relation:
        The defining contrast subgroup (contains I).
    groups:
        Disjoint alias groups covering every effect up to order k, each a
        frozenset of effects that share one estimable contrast.
    """

    factor_names: Tuple[str, ...]
    relation: FrozenSet[FrozenSet[str]]
    groups: Tuple[FrozenSet[FrozenSet[str]], ...]

    @property
    def design_resolution(self) -> int:
        return resolution(set(self.relation))

    def aliases_of(self, *factors: str) -> Set[FrozenSet[str]]:
        """The alias set of one effect, excluding the effect itself."""
        e = effect(*factors)
        return alias_set(e, set(self.relation)) - {e}

    def are_confounded(self, a: Sequence[str], b: Sequence[str]) -> bool:
        """True if the two effects share a contrast."""
        return effect(*b) in alias_set(effect(*a), set(self.relation))

    def main_effect_aliases(self) -> Dict[str, Set[FrozenSet[str]]]:
        """For every factor, the effects its main effect is confounded with."""
        return {name: self.aliases_of(name) for name in self.factor_names}

    def confounds_main_with_order(self, order: int) -> bool:
        """True if some main effect is confounded with an effect of *order*.

        ``confounds_main_with_order(2)`` flags resolution-III designs where
        main effects alias two-factor interactions (the weakness of the
        tutorial's ``D = AB`` example).
        """
        for aliases in self.main_effect_aliases().values():
            if any(len(a) == order for a in aliases):
                return True
        return False

    def format(self) -> str:
        """Render alias groups the way slides 105-108 list them."""
        lines = [f"I = " + " = ".join(sorted(
            (effect_name(w) for w in self.relation if w),
            key=lambda s: (len(s), s)))]
        for group in self.groups:
            names = sorted((effect_name(e) for e in group),
                           key=lambda s: (len(s), s))
            lines.append(" = ".join(names))
        return "\n".join(lines)


def alias_structure(factor_names: Sequence[str],
                    generators: Mapping[str, Iterable[str]]
                    ) -> AliasStructure:
    """Compute the full alias structure of a 2^(k-p) design.

    Parameters mirror :class:`repro.core.designs.FractionalFactorialDesign`.
    """
    factor_names = tuple(factor_names)
    for new_factor, combo in generators.items():
        unknown = [f for f in set(combo) | {new_factor}
                   if f not in factor_names]
        if unknown:
            raise ConfoundingError(
                f"generator {new_factor!r} uses unknown factors {unknown}")
    relation = defining_relation(generators)

    all_effects: Set[FrozenSet[str]] = set()
    for order in range(1, len(factor_names) + 1):
        for combo in itertools.combinations(factor_names, order):
            all_effects.add(frozenset(combo))

    seen: Set[FrozenSet[str]] = set()
    groups: List[FrozenSet[FrozenSet[str]]] = []
    for e in sorted(all_effects, key=lambda x: (len(x), effect_name(x))):
        if e in seen or e in relation:
            continue
        group = frozenset(alias_set(e, relation))
        seen |= group
        groups.append(group)
    return AliasStructure(factor_names=factor_names,
                          relation=frozenset(relation),
                          groups=tuple(groups))


def compare_designs(factor_names: Sequence[str],
                    generators_a: Mapping[str, Iterable[str]],
                    generators_b: Mapping[str, Iterable[str]]
                    ) -> Tuple[AliasStructure, AliasStructure, str]:
    """Compare two fractional designs the way slides 107-109 do.

    Returns both alias structures plus the name (``'a'``, ``'b'`` or
    ``'tie'``) of the preferred design: higher resolution wins; ties break
    toward the design confounding fewer main effects with two-factor
    interactions ("sparsity of effects" principle).
    """
    a = alias_structure(factor_names, generators_a)
    b = alias_structure(factor_names, generators_b)
    if a.design_resolution != b.design_resolution:
        winner = "a" if a.design_resolution > b.design_resolution else "b"
        return a, b, winner
    a_bad = a.confounds_main_with_order(2)
    b_bad = b.confounds_main_with_order(2)
    if a_bad != b_bad:
        return a, b, ("b" if a_bad else "a")
    return a, b, "tie"
