"""The additive (nonlinear regression) model behind 2^k analysis.

The tutorial models the response of a 2^2 design as::

    y = q0 + qA*xA + qB*xB + qAB*xA*xB

with coded factor values xA, xB in {-1, +1}, and generalises to 2^k with
one coefficient per interaction.  :class:`AdditiveModel` stores the
coefficients keyed by canonical column names (``'I'``, ``'A'``, ``'A:B'``,
...) and predicts responses for coded configurations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

from repro.core.factors import interaction_name, parse_interaction
from repro.errors import DesignError


@dataclass(frozen=True)
class AdditiveModel:
    """A fitted 2^k regression model.

    Attributes
    ----------
    coefficients:
        Maps column name to coefficient value.  ``'I'`` holds the mean
        response q0.
    factor_names:
        The main-effect factor names, in design order.
    """

    coefficients: Mapping[str, float]
    factor_names: Tuple[str, ...]

    def __post_init__(self):
        if "I" not in self.coefficients:
            raise DesignError("model needs an 'I' (mean) coefficient")
        for name in self.coefficients:
            if name == "I":
                continue
            for factor in parse_interaction(name):
                if factor not in self.factor_names:
                    raise DesignError(
                        f"coefficient {name!r} references unknown factor "
                        f"{factor!r}")

    @property
    def mean(self) -> float:
        """The mean response q0 (equal to y-bar for a full design)."""
        return self.coefficients["I"]

    def effect(self, *factors: str) -> float:
        """Coefficient of a main effect or interaction.

        ``model.effect('A')`` is qA; ``model.effect('A', 'B')`` is qAB.
        Missing coefficients (dropped by a fractional design) read as 0.
        """
        name = interaction_name(factors)
        return self.coefficients.get(name, 0.0)

    def main_effects(self) -> Dict[str, float]:
        """Main-effect coefficients only, keyed by factor name."""
        return {name: self.coefficients[name]
                for name in self.factor_names if name in self.coefficients}

    def interactions(self, order: int | None = None) -> Dict[str, float]:
        """Interaction coefficients, optionally filtered to one order."""
        out: Dict[str, float] = {}
        for name, value in self.coefficients.items():
            factors = parse_interaction(name)
            if len(factors) < 2:
                continue
            if order is not None and len(factors) != order:
                continue
            out[name] = value
        return out

    def predict(self, coded: Mapping[str, int]) -> float:
        """Predicted response for a coded (-1/+1) configuration."""
        missing = [n for n in self.factor_names if n not in coded]
        if missing:
            raise DesignError(f"coded configuration missing factors {missing}")
        y = 0.0
        for name, q in self.coefficients.items():
            term = q
            for factor in parse_interaction(name):
                code = coded[factor]
                if code not in (-1, 1):
                    raise DesignError(
                        f"coded value for {factor!r} must be ±1, got {code!r}")
                term *= code
            y += term
        return y

    def predict_all(self, rows: Iterable[Mapping[str, int]]) -> list:
        """Predicted responses for a sequence of coded configurations."""
        return [self.predict(row) for row in rows]

    def describe(self, threshold: float = 0.0) -> str:
        """Human-readable ``y = q0 + qA*xA + ...`` rendering.

        Coefficients with ``abs(value) <= threshold`` are omitted (except
        the mean), which is how screening results are usually reported.
        """
        parts = [f"{self.mean:g}"]
        for name, q in self.coefficients.items():
            if name == "I" or abs(q) <= threshold:
                continue
            xs = "*".join(f"x{f}" for f in parse_interaction(name))
            sign = "+" if q >= 0 else "-"
            parts.append(f"{sign} {abs(q):g}*{xs}")
        return "y = " + " ".join(parts)


def model_from_effects(effects: Mapping[str, float],
                       factor_names: Sequence[str]) -> AdditiveModel:
    """Wrap a dict of sign-table coefficients into an :class:`AdditiveModel`."""
    return AdditiveModel(coefficients=dict(effects),
                         factor_names=tuple(factor_names))
