"""Two-factor interaction tables and detection (tutorial slide 58).

The tutorial's canonical example: with factors A (levels A1, A2) and B
(levels B1, B2),

====  ====  ====
(a)    A1    A2
====  ====  ====
B1      3     5
B2      6     8
====  ====  ====

shows *no* interaction — the effect of changing A is the same at every
level of B — whereas replacing the 8 with a 9 makes the effect of A depend
on B: an interaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np

from repro.errors import DesignError


@dataclass(frozen=True)
class InteractionTable:
    """A two-factor response table.

    ``responses[i][j]`` is the response at A-level ``a_levels[i]`` and
    B-level ``b_levels[j]`` — note rows index A and columns index B, the
    transpose of the slide's layout, chosen so ``table.effect_of_a(...)``
    reads naturally.
    """

    a_name: str
    b_name: str
    a_levels: Tuple[str, ...]
    b_levels: Tuple[str, ...]
    responses: Tuple[Tuple[float, ...], ...]

    def __post_init__(self):
        if len(self.responses) != len(self.a_levels):
            raise DesignError(
                f"need one response row per level of {self.a_name!r}")
        for row in self.responses:
            if len(row) != len(self.b_levels):
                raise DesignError(
                    f"every row needs one response per level of "
                    f"{self.b_name!r}")

    def response(self, a_level: str, b_level: str) -> float:
        i = self.a_levels.index(a_level)
        j = self.b_levels.index(b_level)
        return self.responses[i][j]

    def effect_of_a(self, b_level: str) -> float:
        """Change in response when A goes low→high, at a fixed B level."""
        j = self.b_levels.index(b_level)
        return self.responses[-1][j] - self.responses[0][j]

    def effect_of_b(self, a_level: str) -> float:
        """Change in response when B goes low→high, at a fixed A level."""
        i = self.a_levels.index(a_level)
        return self.responses[i][-1] - self.responses[i][0]

    def interaction_magnitude(self) -> float:
        """How much the effect of A differs across B levels (max spread).

        Zero means no interaction: the response lines are parallel.
        """
        effects = [self.effect_of_a(b) for b in self.b_levels]
        return max(effects) - min(effects)

    def has_interaction(self, tolerance: float = 0.0) -> bool:
        """True if the effect of A depends on the level of B."""
        return self.interaction_magnitude() > tolerance

    def format(self) -> str:
        """Render in the slide's orientation (columns = A levels)."""
        width = max(6, max(len(s) for s in self.a_levels + self.b_levels) + 1)
        header = " " * width + "".join(a.rjust(width) for a in self.a_levels)
        lines = [header]
        for j, b in enumerate(self.b_levels):
            cells = "".join(f"{self.responses[i][j]:>{width}g}"
                            for i in range(len(self.a_levels)))
            lines.append(b.rjust(width) + cells)
        return "\n".join(lines)


def from_slide_layout(a_name: str, b_name: str,
                      a_levels: Sequence[str], b_levels: Sequence[str],
                      rows_by_b: Sequence[Sequence[float]]
                      ) -> InteractionTable:
    """Build a table from the slide's layout (one row per B level)."""
    if len(rows_by_b) != len(b_levels):
        raise DesignError("need one row per B level")
    matrix = np.asarray(rows_by_b, dtype=float)
    if matrix.shape[1] != len(a_levels):
        raise DesignError("need one column per A level")
    transposed = tuple(tuple(float(v) for v in row) for row in matrix.T)
    return InteractionTable(a_name=a_name, b_name=b_name,
                            a_levels=tuple(a_levels),
                            b_levels=tuple(b_levels),
                            responses=transposed)


def slide58_tables() -> Tuple[InteractionTable, InteractionTable]:
    """The tutorial's (a) no-interaction and (b) interaction examples."""
    table_a = from_slide_layout(
        "A", "B", ("A1", "A2"), ("B1", "B2"), [[3, 5], [6, 8]])
    table_b = from_slide_layout(
        "A", "B", ("A1", "A2"), ("B1", "B2"), [[3, 5], [6, 9]])
    return table_a, table_b
