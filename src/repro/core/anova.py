"""Analysis of variance for multi-level designs.

The 2^k machinery of :mod:`repro.core.variation` handles two-level
factors; real studies often keep more levels (the tutorial's slide-56
scenario has 10-40 per factor).  This module provides the classical
F-test ANOVA the tutorial's source (Jain, ch. 20-21) prescribes:

- :func:`one_way_anova` — one factor, any number of levels, replicated
  observations per level;
- :func:`two_way_anova` — two factors with ``r`` replications per cell,
  separating both main effects, their interaction, and the error term.

Both return tables whose rows carry sums of squares, degrees of freedom,
F statistics and p-values, so "is this factor significant?" has a
defensible answer instead of eyeballing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.errors import DesignError


@dataclass(frozen=True)
class AnovaRow:
    """One source of variation in an ANOVA table."""

    source: str
    sum_squares: float
    dof: int
    mean_square: float
    f_statistic: float
    p_value: float

    def significant(self, alpha: float = 0.05) -> bool:
        return self.p_value < alpha


@dataclass(frozen=True)
class AnovaTable:
    """A complete ANOVA decomposition."""

    rows: Tuple[AnovaRow, ...]
    error_sum_squares: float
    error_dof: int
    total_sum_squares: float

    def row(self, source: str) -> AnovaRow:
        for row in self.rows:
            if row.source == source:
                return row
        raise DesignError(
            f"no ANOVA row {source!r}; rows: {[r.source for r in self.rows]}")

    def significant_sources(self, alpha: float = 0.05) -> Tuple[str, ...]:
        return tuple(r.source for r in self.rows if r.significant(alpha))

    def explained_fraction(self, source: str) -> float:
        if self.total_sum_squares == 0:
            return 0.0
        return self.row(source).sum_squares / self.total_sum_squares

    def format(self) -> str:
        lines = [f"{'source':<14} {'SS':>12} {'dof':>5} {'MS':>12} "
                 f"{'F':>10} {'p':>9}"]
        for row in self.rows:
            lines.append(
                f"{row.source:<14} {row.sum_squares:>12.4g} "
                f"{row.dof:>5} {row.mean_square:>12.4g} "
                f"{row.f_statistic:>10.3f} {row.p_value:>9.4f}"
                f"{'  *' if row.significant() else ''}")
        error_ms = self.error_sum_squares / self.error_dof \
            if self.error_dof else float("nan")
        lines.append(f"{'error':<14} {self.error_sum_squares:>12.4g} "
                     f"{self.error_dof:>5} {error_ms:>12.4g}")
        lines.append(f"{'total':<14} {self.total_sum_squares:>12.4g}")
        lines.append("(* = significant at alpha = 0.05)")
        return "\n".join(lines)


def one_way_anova(groups: Sequence[Sequence[float]],
                  factor_name: str = "factor") -> AnovaTable:
    """One-factor ANOVA over ``len(groups)`` levels.

    Each group holds the replicated observations at one level; groups
    may have different sizes but each needs at least one observation and
    at least one group needs two (otherwise the error term is empty).
    """
    if len(groups) < 2:
        raise DesignError("one-way ANOVA needs at least two levels")
    arrays = [np.asarray(g, dtype=float) for g in groups]
    if any(a.size == 0 for a in arrays):
        raise DesignError("every level needs at least one observation")
    n_total = sum(a.size for a in arrays)
    error_dof = n_total - len(arrays)
    if error_dof < 1:
        raise DesignError(
            "no degrees of freedom for the error term; add replications")
    grand = float(np.concatenate(arrays).mean())
    ss_between = float(sum(a.size * (a.mean() - grand) ** 2
                           for a in arrays))
    ss_within = float(sum(((a - a.mean()) ** 2).sum() for a in arrays))
    ss_total = ss_between + ss_within
    dof_between = len(arrays) - 1
    ms_between = ss_between / dof_between
    ms_within = ss_within / error_dof
    if ms_within == 0:
        f_stat = float("inf") if ms_between > 0 else 0.0
        p_value = 0.0 if ms_between > 0 else 1.0
    else:
        f_stat = ms_between / ms_within
        p_value = float(_scipy_stats.f.sf(f_stat, dof_between, error_dof))
    row = AnovaRow(source=factor_name, sum_squares=ss_between,
                   dof=dof_between, mean_square=ms_between,
                   f_statistic=f_stat, p_value=p_value)
    return AnovaTable(rows=(row,), error_sum_squares=ss_within,
                      error_dof=error_dof, total_sum_squares=ss_total)


def two_way_anova(cells: Sequence[Sequence[Sequence[float]]],
                  factor_a: str = "A", factor_b: str = "B") -> AnovaTable:
    """Two-factor ANOVA with replications.

    ``cells[i][j]`` holds the ``r`` observations at level ``i`` of A and
    level ``j`` of B; every cell must have the same ``r >= 2``.
    """
    a_levels = len(cells)
    if a_levels < 2:
        raise DesignError("factor A needs at least two levels")
    b_levels = len(cells[0])
    if b_levels < 2:
        raise DesignError("factor B needs at least two levels")
    if any(len(row) != b_levels for row in cells):
        raise DesignError("ragged cell grid")
    r = len(cells[0][0])
    if r < 2:
        raise DesignError("two-way ANOVA needs >= 2 replications per cell")
    data = np.asarray(cells, dtype=float)
    if data.shape != (a_levels, b_levels, r):
        raise DesignError(
            f"every cell needs exactly {r} observations")

    grand = data.mean()
    cell_means = data.mean(axis=2)
    a_means = data.mean(axis=(1, 2))
    b_means = data.mean(axis=(0, 2))

    ss_a = float(b_levels * r * ((a_means - grand) ** 2).sum())
    ss_b = float(a_levels * r * ((b_means - grand) ** 2).sum())
    ss_ab = float(r * ((cell_means - a_means[:, None]
                        - b_means[None, :] + grand) ** 2).sum())
    ss_error = float(((data - cell_means[:, :, None]) ** 2).sum())
    ss_total = float(((data - grand) ** 2).sum())

    dof_a = a_levels - 1
    dof_b = b_levels - 1
    dof_ab = dof_a * dof_b
    dof_error = a_levels * b_levels * (r - 1)
    ms_error = ss_error / dof_error

    def make_row(source: str, ss: float, dof: int) -> AnovaRow:
        ms = ss / dof
        if ms_error == 0:
            f_stat = float("inf") if ms > 0 else 0.0
            p_value = 0.0 if ms > 0 else 1.0
        else:
            f_stat = ms / ms_error
            p_value = float(_scipy_stats.f.sf(f_stat, dof, dof_error))
        return AnovaRow(source=source, sum_squares=ss, dof=dof,
                        mean_square=ms, f_statistic=f_stat,
                        p_value=p_value)

    rows = (make_row(factor_a, ss_a, dof_a),
            make_row(factor_b, ss_b, dof_b),
            make_row(f"{factor_a}:{factor_b}", ss_ab, dof_ab))
    return AnovaTable(rows=rows, error_sum_squares=ss_error,
                      error_dof=dof_error, total_sum_squares=ss_total)
