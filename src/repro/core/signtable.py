"""Sign tables for 2^k and 2^(k-p) factorial designs.

A sign table has one row per experiment and one -1/+1 column per effect
(the identity column ``I``, each main effect, and each interaction).  The
tutorial's "sign table method of calculating effects" computes every model
coefficient as a dot product of the response vector with one column,
divided by the number of rows.

The construction of fractional tables follows the tutorial's two-step
recipe: build a full factorial over ``k - p`` base factors, then relabel
``p`` of the interaction columns with the remaining factor names
(e.g. ``D = ABC``).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, Iterable, Mapping, Sequence, Tuple

import numpy as np

from repro.core.factors import interaction_name
from repro.errors import DesignError


@dataclass(frozen=True)
class SignTable:
    """An immutable -1/+1 matrix with named columns.

    Attributes
    ----------
    factor_names:
        Names of the base factor columns, in order.
    columns:
        Mapping of column name (``'I'``, ``'A'``, ``'A:B'``, ...) to a
        numpy vector of -1/+1 entries (the ``I`` column is all +1).
    """

    factor_names: Tuple[str, ...]
    columns: Mapping[str, np.ndarray]

    @property
    def n_rows(self) -> int:
        return len(self.columns["I"])

    @property
    def column_names(self) -> Tuple[str, ...]:
        return tuple(self.columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self.columns[name]
        except KeyError:
            raise DesignError(
                f"sign table has no column {name!r}; "
                f"columns: {list(self.columns)}") from None

    def row(self, i: int) -> Dict[str, int]:
        """Factor codes (main-effect columns only) of row *i*."""
        return {name: int(self.columns[name][i]) for name in self.factor_names}

    def is_zero_sum(self, name: str) -> bool:
        """True if the column sums to zero (both levels equally tested)."""
        return int(self.column(name).sum()) == 0

    def are_orthogonal(self, a: str, b: str) -> bool:
        """True if columns *a* and *b* agree as often as they disagree."""
        return int((self.column(a) * self.column(b)).sum()) == 0

    def validate(self) -> None:
        """Check the structural invariants the tutorial lists.

        - every non-identity column is zero-sum;
        - every pair of distinct non-identity columns is orthogonal;
        - every entry is -1 or +1.

        Raises :class:`DesignError` on the first violation.
        """
        names = [n for n in self.columns if n != "I"]
        for name in names:
            col = self.column(name)
            if not np.all(np.isin(col, (-1, 1))):
                raise DesignError(f"column {name!r} has entries outside ±1")
            if not self.is_zero_sum(name):
                raise DesignError(f"column {name!r} is not zero-sum")
        for a, b in itertools.combinations(names, 2):
            if not self.are_orthogonal(a, b):
                raise DesignError(
                    f"columns {a!r} and {b!r} are not orthogonal")

    def format(self, columns: Sequence[str] | None = None) -> str:
        """Render the table the way the slides print it (-1 / 1 entries)."""
        names = list(columns) if columns is not None else list(self.columns)
        widths = [max(len(n), 2) for n in names]
        header = "  ".join(n.rjust(w) for n, w in zip(names, widths))
        lines = [header]
        for i in range(self.n_rows):
            cells = []
            for name, width in zip(names, widths):
                cells.append(str(int(self.column(name)[i])).rjust(width))
            lines.append("  ".join(cells))
        return "\n".join(lines)


def _interaction_columns(factor_names: Sequence[str],
                         base: Mapping[str, np.ndarray],
                         max_order: int | None = None
                         ) -> Dict[str, np.ndarray]:
    """All interaction columns (order >= 2) as products of base columns."""
    columns: Dict[str, np.ndarray] = {}
    top = len(factor_names) if max_order is None else max_order
    for order in range(2, top + 1):
        for combo in itertools.combinations(factor_names, order):
            name = interaction_name(combo)
            product = np.ones_like(base[combo[0]])
            for factor in combo:
                product = product * base[factor]
            columns[name] = product
    return columns


def full_sign_table(factor_names: Sequence[str],
                    max_order: int | None = None) -> SignTable:
    """Sign table of a full 2^k design over *factor_names*.

    Rows enumerate level combinations with the **first** factor varying
    fastest, matching the tables printed in the tutorial (slides 74 and
    102: column A alternates every row, B every two rows, ...).
    Interaction columns up to *max_order* (default: all orders) are
    included.
    """
    factor_names = tuple(factor_names)
    if not factor_names:
        raise DesignError("need at least one factor for a sign table")
    if len(set(factor_names)) != len(factor_names):
        raise DesignError(f"duplicate factor names in {factor_names}")
    k = len(factor_names)
    n = 2 ** k
    base: Dict[str, np.ndarray] = {}
    for i, name in enumerate(factor_names):
        # Factor i toggles every 2^i rows: first factor fastest.
        block = 2 ** i
        pattern = np.repeat(np.array([-1, 1], dtype=np.int8), block)
        base[name] = np.tile(pattern, n // (2 * block))
    columns: Dict[str, np.ndarray] = {"I": np.ones(n, dtype=np.int8)}
    columns.update(base)
    columns.update(_interaction_columns(factor_names, base, max_order))
    return SignTable(factor_names=factor_names, columns=columns)


def fractional_sign_table(base_factors: Sequence[str],
                          generators: Mapping[str, Sequence[str]]
                          ) -> SignTable:
    """Sign table of a 2^(k-p) fractional design.

    Parameters
    ----------
    base_factors:
        The ``k - p`` factors given a full factorial (step 1 of the
        tutorial's method).
    generators:
        Maps each of the ``p`` remaining factor names to the base-factor
        interaction whose column it re-labels (step 2), e.g.
        ``{"D": ("A", "B", "C")}`` for the ``D = ABC`` design.

    The resulting table exposes main-effect columns for all ``k`` factors
    plus the interaction columns *of the base factors* that were **not**
    consumed by a generator (their identities now alias generated-factor
    interactions; see :mod:`repro.core.confounding`).
    """
    base_factors = tuple(base_factors)
    full = full_sign_table(base_factors)
    used: Dict[str, str] = {}
    for new_factor, combo in generators.items():
        if new_factor in base_factors:
            raise DesignError(
                f"generator target {new_factor!r} is already a base factor")
        combo = tuple(combo)
        if len(combo) < 2:
            raise DesignError(
                f"generator for {new_factor!r} must be an interaction of at "
                f"least two base factors, got {combo}")
        unknown = [f for f in combo if f not in base_factors]
        if unknown:
            raise DesignError(
                f"generator for {new_factor!r} uses unknown base factors "
                f"{unknown}")
        column = interaction_name(combo)
        if column in used:
            raise DesignError(
                f"interaction column {column!r} assigned to both "
                f"{used[column]!r} and {new_factor!r}")
        used[column] = new_factor

    factor_names = base_factors + tuple(generators)
    if len(set(factor_names)) != len(factor_names):
        raise DesignError("duplicate factor names across base and generators")

    columns: Dict[str, np.ndarray] = {"I": full.columns["I"]}
    for name in base_factors:
        columns[name] = full.columns[name]
    for column_name, new_factor in used.items():
        columns[new_factor] = full.columns[column_name]
    for name, vec in full.columns.items():
        if name == "I" or name in base_factors or name in used:
            continue
        columns[name] = vec
    return SignTable(factor_names=factor_names, columns=columns)


def dot_effects(table: SignTable, responses: Sequence[float],
                columns: Iterable[str] | None = None) -> Dict[str, float]:
    """Sign-table method: coefficient = column . y / n, for each column.

    With ``columns=None`` every column in the table is used, which for a
    full 2^k table recovers the complete regression model.
    """
    y = np.asarray(responses, dtype=float)
    if y.shape != (table.n_rows,):
        raise DesignError(
            f"expected {table.n_rows} responses, got {y.shape}")
    names = list(columns) if columns is not None else list(table.columns)
    return {name: float(table.column(name) @ y) / table.n_rows
            for name in names}
