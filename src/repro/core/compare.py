"""Comparison metrics and the "apples and oranges" fairness checklist.

Covers the tutorial's comparison metrics (slide 22: throughput, speed-up,
scale-up) and its fairness war stories (slides 37-45): comparisons are
meaningless unless both systems were built with the same optimization
level, tuned comparably, and measured over the same pipeline stages.
:class:`ComparisonContext` captures those crucial factors and
:func:`check_fairness` reports every mismatch.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import MeasurementError

#: Pipeline stages a DBMS measurement may include (slide 42: omitting
#: parsing/optimization/printing in X but including them in Y is unfair).
PIPELINE_STAGES = ("parse", "translate", "optimize", "execute", "print")


def throughput(queries: int, seconds: float) -> float:
    """Queries per second."""
    if seconds <= 0:
        raise MeasurementError(f"elapsed time must be positive, got {seconds}")
    if queries < 0:
        raise MeasurementError(f"query count must be >= 0, got {queries}")
    return queries / seconds


def speedup(time_base: float, time_new: float) -> float:
    """How much faster the new system is: ``t_base / t_new``.

    Values above 1 mean the new system wins.
    """
    if time_base <= 0 or time_new <= 0:
        raise MeasurementError("times must be positive for a speed-up")
    return time_base / time_new


def scaleup(work_base: float, time_base: float,
            work_scaled: float, time_scaled: float) -> float:
    """Scale-up: relative efficiency when both work and resources grow.

    1.0 is perfect scale-up (k-times the work in the same time on k-times
    the resources); below 1 the system loses efficiency at scale.
    """
    if min(work_base, time_base, work_scaled, time_scaled) <= 0:
        raise MeasurementError("work and time must be positive for scale-up")
    return (work_scaled / work_base) / (time_scaled / time_base)


def relative_change(base: float, new: float) -> float:
    """Signed relative change ``(new - base) / base``."""
    if base == 0:
        raise MeasurementError("base value must be nonzero")
    return (new - base) / base


@dataclass(frozen=True)
class ComparisonContext:
    """The crucial factors of one measured system, for fairness checking.

    Attributes mirror the tutorial's war stories:

    - ``optimized_build``: compiler optimization on? (slides 37-41: DBG vs
      OPT differs by up to 2x);
    - ``tuned``: was the system configured/tuned, or out-of-the-box?
      (slides 42-45: factor 2-10);
    - ``stages``: which pipeline stages the measurement covers;
    - ``hardware`` / ``dataset``: identifiers that must match.
    """

    system: str
    optimized_build: bool = True
    tuned: bool = False
    stages: Tuple[str, ...] = PIPELINE_STAGES
    hardware: str = ""
    dataset: str = ""

    def __post_init__(self):
        unknown = [s for s in self.stages if s not in PIPELINE_STAGES]
        if unknown:
            raise MeasurementError(
                f"unknown pipeline stages {unknown}; "
                f"known: {list(PIPELINE_STAGES)}")


@dataclass(frozen=True)
class FairnessIssue:
    """One detected apples-vs-oranges mismatch."""

    kind: str
    detail: str


@dataclass(frozen=True)
class FairnessReport:
    """Outcome of :func:`check_fairness`."""

    issues: Tuple[FairnessIssue, ...]

    @property
    def is_fair(self) -> bool:
        return not self.issues

    def format(self) -> str:
        if self.is_fair:
            return "comparison looks fair (no crucial-factor mismatches)"
        lines = ["UNFAIR COMPARISON ('apples and oranges'):"]
        for issue in self.issues:
            lines.append(f"  [{issue.kind}] {issue.detail}")
        return "\n".join(lines)


def check_fairness(a: ComparisonContext, b: ComparisonContext
                   ) -> FairnessReport:
    """Compare two measurement contexts and report every mismatch.

    This encodes the tutorial's checklist; it cannot prove fairness (the
    tutorial: "absolutely fair comparisons are virtually impossible") but
    it catches the classic blunders.
    """
    issues: List[FairnessIssue] = []
    if a.optimized_build != b.optimized_build:
        dbg = a.system if not a.optimized_build else b.system
        issues.append(FairnessIssue(
            "build",
            f"{dbg} was built without compiler optimization while the "
            "other was optimized (the CWI war story: up to 2x difference)"))
    if a.tuned != b.tuned:
        raw = a.system if not a.tuned else b.system
        issues.append(FairnessIssue(
            "tuning",
            f"{raw} runs with out-of-the-box settings while the other was "
            "hand-tuned (tutorial: factor 2-10 difference)"))
    if set(a.stages) != set(b.stages):
        only_a = sorted(set(a.stages) - set(b.stages))
        only_b = sorted(set(b.stages) - set(a.stages))
        issues.append(FairnessIssue(
            "stages",
            f"measured pipeline stages differ: {a.system} includes "
            f"{only_a or 'nothing extra'}, {b.system} includes "
            f"{only_b or 'nothing extra'}"))
    if a.hardware and b.hardware and a.hardware != b.hardware:
        issues.append(FairnessIssue(
            "hardware",
            f"different hardware: {a.hardware!r} vs {b.hardware!r}"))
    if a.dataset and b.dataset and a.dataset != b.dataset:
        issues.append(FairnessIssue(
            "dataset",
            f"different datasets: {a.dataset!r} vs {b.dataset!r}"))
    return FairnessReport(issues=tuple(issues))
