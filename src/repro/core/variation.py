"""Allocation of variation: how important is each factor?

The tutorial (slides 81-93) distributes the total variation of the
response, ``SST = sum((y_i - y_bar)^2)``, among the factors of a 2^k
design::

    SST = 2^k * qA^2 + 2^k * qB^2 + 2^k * qAB^2 + ...

The fraction ``2^k q_col^2 / SST`` measures the *importance* of that
effect.  With replications, the residual (experimental error) claims the
remainder, and the tutorial's first "common mistake" — ignoring variation
due to experimental error — becomes checkable: a factor explaining less
variation than the error term is noise.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np

from repro.core.designs import TwoLevelFactorialDesign
from repro.core.signtable import dot_effects
from repro.errors import DesignError


def _refuse_failed_points(values: np.ndarray, where: str) -> None:
    """Refuse NaN/inf responses with a pointer at the failed runs.

    Allocation of variation distributes SST over *every* cell; a NaN
    from a failed design point would turn the whole decomposition into
    NaNs, which reads like "nothing matters" — the silent drop the
    tutorial warns against.  Refuse loudly instead.
    """
    bad = np.argwhere(~np.isfinite(values))
    if bad.size:
        where_cells = ", ".join(str(tuple(cell))
                                for cell in bad[:6].tolist())
        more = "" if len(bad) <= 6 else f" (+{len(bad) - 6} more)"
        raise DesignError(
            f"{where}: {len(bad)} response(s) are NaN/inf — failed or "
            f"missing runs at {where_cells}{more}.  Re-measure those "
            "design points (see HarnessReport.failures) or analyse a "
            "masked subset; SST cannot be allocated over missing cells.")


@dataclass(frozen=True)
class VariationReport:
    """Result of an allocation-of-variation analysis.

    Attributes
    ----------
    sst:
        Total sum of squares of the response around its mean.
    components:
        Maps effect name (``'A'``, ``'A:B'``, ...) to its absolute sum of
        squares; includes ``'error'`` when replications were provided.
    """

    sst: float
    components: Mapping[str, float]

    def fraction(self, name: str) -> float:
        """Fraction of SST explained by *name* (0 when SST is zero)."""
        if self.sst == 0:
            return 0.0
        return self.components.get(name, 0.0) / self.sst

    def percent(self, name: str) -> float:
        """Percentage of SST explained by *name*."""
        return 100.0 * self.fraction(name)

    def percentages(self) -> Dict[str, float]:
        """All components as percentages of SST."""
        return {name: self.percent(name) for name in self.components}

    def ranked(self) -> Tuple[Tuple[str, float], ...]:
        """Components sorted by explained percentage, descending."""
        return tuple(sorted(self.percentages().items(),
                            key=lambda item: item[1], reverse=True))

    def dominant(self) -> str:
        """Name of the effect explaining the most variation."""
        return self.ranked()[0][0]

    def significant(self, above_error_factor: float = 1.0) -> Tuple[str, ...]:
        """Effects explaining more variation than the error term.

        Without an error component every non-error effect counts as
        significant (nothing to compare against — the tutorial's common
        mistake #1 is exactly to forget that caveat).
        """
        error = self.components.get("error", 0.0) * above_error_factor
        return tuple(name for name, ss in self.components.items()
                     if name != "error" and ss > error)

    def format(self) -> str:
        """Render the percentages table the way slide 92 prints it."""
        lines = ["Variation explained (%)"]
        for name, pct in self.ranked():
            lines.append(f"  {name:>8}  {pct:6.1f}")
        return "\n".join(lines)


def allocate_variation(design: TwoLevelFactorialDesign,
                       responses: Sequence[float]) -> VariationReport:
    """Allocate SST among effects for a single-replication 2^k design."""
    y = np.asarray(responses, dtype=float)
    n = design.sign_table.n_rows
    if y.shape != (n,):
        raise DesignError(f"expected {n} responses, got {y.shape}")
    _refuse_failed_points(y, "allocate_variation")
    effects = dot_effects(design.sign_table, responses)
    sst = float(np.sum((y - y.mean()) ** 2))
    components = {name: n * q * q
                  for name, q in effects.items() if name != "I"}
    return VariationReport(sst=sst, components=components)


def allocate_variation_replicated(design: TwoLevelFactorialDesign,
                                  replicated: Sequence[Sequence[float]]
                                  ) -> VariationReport:
    """Allocate SST among effects *and experimental error* for 2^k·r runs.

    ``SST = SSY - SS0 = sum_effects 2^k r q^2 + SSE`` where SSE is the
    within-cell sum of squared residuals.
    """
    n = design.sign_table.n_rows
    if len(replicated) != n:
        raise DesignError(f"expected {n} rows of replications, "
                          f"got {len(replicated)}")
    r = len(replicated[0])
    if r < 2 or any(len(row) != r for row in replicated):
        raise DesignError(
            "error estimation needs the same replication count >= 2 per row")
    matrix = np.asarray(replicated, dtype=float)
    _refuse_failed_points(matrix, "allocate_variation_replicated")
    means = matrix.mean(axis=1)
    effects = dot_effects(design.sign_table, means.tolist())
    sse = float(np.sum((matrix - means[:, None]) ** 2))
    grand = float(matrix.mean())
    sst = float(np.sum((matrix - grand) ** 2))
    components = {name: n * r * q * q
                  for name, q in effects.items() if name != "I"}
    components["error"] = sse
    return VariationReport(sst=sst, components=components)
