"""Experiment design: the paper's primary methodological contribution.

Public surface of :mod:`repro.core`:

- factors and spaces: :class:`Factor`, :class:`FactorSpace`;
- designs: :class:`SimpleDesign`, :class:`FullFactorialDesign`,
  :class:`TwoLevelFactorialDesign` (2^k),
  :class:`FractionalFactorialDesign` (2^(k-p)),
  :class:`OrthogonalArrayDesign`;
- analysis: :func:`estimate_effects`, :func:`allocate_variation`,
  :func:`analyze_replicated`, :func:`alias_structure`;
- methodology: :func:`screen_and_refine`;
- comparison: :func:`speedup`, :func:`throughput`, :func:`check_fairness`.
"""

from repro.core.anova import (
    AnovaRow,
    AnovaTable,
    one_way_anova,
    two_way_anova,
)
from repro.core.compare import (
    ComparisonContext,
    FairnessIssue,
    FairnessReport,
    PIPELINE_STAGES,
    check_fairness,
    relative_change,
    scaleup,
    speedup,
    throughput,
)
from repro.core.confounding import (
    AliasStructure,
    alias_set,
    alias_structure,
    compare_designs,
    defining_relation,
    effect,
    effect_name,
    multiply,
    parse_effect,
    resolution,
)
from repro.core.designs import (
    Design,
    FractionalFactorialDesign,
    FullFactorialDesign,
    OrthogonalArrayDesign,
    SimpleDesign,
    TwoLevelFactorialDesign,
    fractional_size,
    full_factorial_size,
    simple_design_size,
    two_level_size,
)
from repro.core.effects import (
    estimate_effects,
    estimate_effects_from_table,
    estimate_effects_replicated,
    responses_from_model,
    solve_two_by_two,
)
from repro.core.factors import (
    DesignPoint,
    Factor,
    FactorSpace,
    interaction_name,
    parse_interaction,
    two_level,
)
from repro.core.interaction import (
    InteractionTable,
    from_slide_layout,
    slide58_tables,
)
from repro.core.model import AdditiveModel, model_from_effects
from repro.core.regression import (
    LinearFit,
    PowerLawFit,
    fit_power_law,
    linear_fit,
)
from repro.core.replication import (
    EffectInterval,
    ReplicatedAnalysis,
    analyze_replicated,
)
from repro.core.signtable import (
    SignTable,
    dot_effects,
    fractional_sign_table,
    full_sign_table,
)
from repro.core.twostage import (
    RefinementResult,
    ScreeningResult,
    TwoStageResult,
    refine,
    run_design,
    screen,
    screen_and_refine,
)
from repro.core.variation import (
    VariationReport,
    allocate_variation,
    allocate_variation_replicated,
)

__all__ = [
    "AdditiveModel",
    "AnovaRow",
    "AnovaTable",
    "LinearFit",
    "PowerLawFit",
    "fit_power_law",
    "linear_fit",
    "one_way_anova",
    "two_way_anova",
    "AliasStructure",
    "ComparisonContext",
    "Design",
    "DesignPoint",
    "EffectInterval",
    "Factor",
    "FactorSpace",
    "FairnessIssue",
    "FairnessReport",
    "FractionalFactorialDesign",
    "FullFactorialDesign",
    "InteractionTable",
    "OrthogonalArrayDesign",
    "PIPELINE_STAGES",
    "RefinementResult",
    "ReplicatedAnalysis",
    "ScreeningResult",
    "SignTable",
    "SimpleDesign",
    "TwoLevelFactorialDesign",
    "TwoStageResult",
    "VariationReport",
    "alias_set",
    "alias_structure",
    "allocate_variation",
    "allocate_variation_replicated",
    "analyze_replicated",
    "check_fairness",
    "compare_designs",
    "defining_relation",
    "dot_effects",
    "effect",
    "effect_name",
    "estimate_effects",
    "estimate_effects_from_table",
    "estimate_effects_replicated",
    "fractional_sign_table",
    "fractional_size",
    "from_slide_layout",
    "full_factorial_size",
    "full_sign_table",
    "interaction_name",
    "model_from_effects",
    "multiply",
    "parse_effect",
    "parse_interaction",
    "refine",
    "relative_change",
    "resolution",
    "responses_from_model",
    "run_design",
    "scaleup",
    "screen",
    "screen_and_refine",
    "simple_design_size",
    "slide58_tables",
    "solve_two_by_two",
    "speedup",
    "throughput",
    "two_level",
    "two_level_size",
]
