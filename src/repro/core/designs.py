"""Experiment designs: simple, full factorial, 2^k, 2^(k-p), orthogonal.

The tutorial presents four classical designs (after Raj Jain):

- **simple design**: fix a baseline configuration and vary one factor at a
  time — ``1 + sum(n_i - 1)`` experiments, cannot see interactions;
- **full factorial**: every level combination — ``prod(n_i)`` experiments;
- **2^k factorial**: two levels per factor — ``2^k`` experiments, "very
  useful for a first-cut analysis";
- **2^(k-p) fractional factorial**: a judicious ``2^(k-p)``-row subset that
  confounds (aliases) some effects (see :mod:`repro.core.confounding`).

Each design yields :class:`~repro.core.factors.DesignPoint` rows that the
measurement harness executes.
"""

from __future__ import annotations

import itertools
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.factors import DesignPoint, FactorSpace
from repro.core.signtable import SignTable, fractional_sign_table, full_sign_table
from repro.errors import DesignError


class Design:
    """Base class: an ordered collection of design points over a space."""

    def __init__(self, space: FactorSpace):
        self.space = space

    def __len__(self) -> int:
        raise NotImplementedError

    def points(self) -> Iterator[DesignPoint]:
        """Yield the design's rows in table order."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[DesignPoint]:
        return self.points()

    def configurations(self) -> List[Dict[str, Any]]:
        """All rows as plain factor-name → level dicts."""
        return [dict(p.config) for p in self.points()]

    def describe(self) -> str:
        """One-line summary used in manifests and logs."""
        return f"{type(self).__name__} over {len(self.space)} factors, " \
               f"{len(self)} experiments"


class SimpleDesign(Design):
    """One-at-a-time design around a baseline configuration.

    The first point is the baseline itself; subsequent points change a
    single factor to each of its non-baseline levels, keeping everything
    else fixed.  Size is ``1 + sum(n_i - 1)``.

    The tutorial's caveat applies and is encoded in
    :meth:`can_estimate_interactions`: when one parameter varies the others
    are constant, so interactions are invisible.
    """

    def __init__(self, space: FactorSpace,
                 baseline: Optional[Mapping[str, Any]] = None):
        super().__init__(space)
        if baseline is None:
            baseline = {f.name: f.levels[0] for f in space}
        space.validate_configuration(baseline)
        self.baseline = dict(baseline)

    def __len__(self) -> int:
        return 1 + sum(f.n_levels - 1 for f in self.space)

    @staticmethod
    def can_estimate_interactions() -> bool:
        return False

    def points(self) -> Iterator[DesignPoint]:
        index = 0
        yield DesignPoint(index=index, config=dict(self.baseline), coded={})
        for factor in self.space:
            for level in factor.levels:
                if level == self.baseline[factor.name]:
                    continue
                index += 1
                config = dict(self.baseline)
                config[factor.name] = level
                yield DesignPoint(index=index, config=config, coded={})


class FullFactorialDesign(Design):
    """Every level combination: ``prod(n_i)`` experiments.

    Rows are ordered with the **first** factor varying fastest, matching
    the sign-table convention used throughout the tutorial.
    """

    def __len__(self) -> int:
        return self.space.full_size()

    @staticmethod
    def can_estimate_interactions() -> bool:
        return True

    def points(self) -> Iterator[DesignPoint]:
        level_lists = [factor.levels for factor in reversed(self.space.factors)]
        names = tuple(reversed(self.space.names))
        for index, combo in enumerate(itertools.product(*level_lists)):
            config = dict(zip(names, combo))
            coded: Dict[str, int] = {}
            if self.space.all_two_level:
                coded = {name: self.space[name].code(level)
                         for name, level in config.items()}
            yield DesignPoint(index=index, config=config, coded=coded)


class TwoLevelFactorialDesign(Design):
    """A 2^k design with its sign table attached.

    Requires every factor to have exactly two levels.  The row order is the
    sign-table order (first factor toggles slowest), so responses collected
    by iterating :meth:`points` line up with
    :func:`repro.core.signtable.dot_effects`.
    """

    def __init__(self, space: FactorSpace,
                 max_interaction_order: Optional[int] = None):
        super().__init__(space)
        if not space.all_two_level:
            bad = [f.name for f in space if not f.is_two_level]
            raise DesignError(
                f"2^k designs need two-level factors; offending: {bad}")
        self.sign_table: SignTable = full_sign_table(
            space.names, max_order=max_interaction_order)

    def __len__(self) -> int:
        return 2 ** len(self.space)

    @staticmethod
    def can_estimate_interactions() -> bool:
        return True

    def points(self) -> Iterator[DesignPoint]:
        for i in range(self.sign_table.n_rows):
            coded = self.sign_table.row(i)
            config = {name: self.space[name].decode(code)
                      for name, code in coded.items()}
            yield DesignPoint(index=i, config=config, coded=coded)


class FractionalFactorialDesign(Design):
    """A 2^(k-p) fractional factorial with explicit generators.

    Parameters
    ----------
    space:
        All ``k`` two-level factors.
    base_factors:
        The ``k - p`` factor names receiving a full factorial.
    generators:
        Maps each remaining factor name to the base interaction whose
        column it takes over, e.g. ``{"D": ("A", "B", "C")}``.

    The alias structure implied by the generators is available through
    :meth:`repro.core.confounding.alias_structure`.
    """

    def __init__(self, space: FactorSpace, base_factors: Sequence[str],
                 generators: Mapping[str, Sequence[str]]):
        super().__init__(space)
        if not space.all_two_level:
            bad = [f.name for f in space if not f.is_two_level]
            raise DesignError(
                f"fractional designs need two-level factors; offending: {bad}")
        declared = set(base_factors) | set(generators)
        if declared != set(space.names):
            raise DesignError(
                "base factors plus generators must cover the factor space "
                f"exactly; declared {sorted(declared)}, "
                f"space has {sorted(space.names)}")
        self.base_factors = tuple(base_factors)
        self.generators = {name: tuple(combo)
                           for name, combo in generators.items()}
        self.sign_table: SignTable = fractional_sign_table(
            self.base_factors, self.generators)

    def __len__(self) -> int:
        return 2 ** len(self.base_factors)

    @staticmethod
    def can_estimate_interactions() -> bool:
        return True  # some, subject to confounding

    def points(self) -> Iterator[DesignPoint]:
        for i in range(self.sign_table.n_rows):
            coded = self.sign_table.row(i)
            config = {name: self.space[name].decode(code)
                      for name, code in coded.items()}
            yield DesignPoint(index=i, config=config, coded=coded)


#: The 3x3 Graeco-Latin square behind the tutorial's slide-67 example
#: (CPU x Memory x Workload x Education in 9 experiments instead of 81).
_GRAECO_LATIN_3 = (
    # (memory_idx, workload_idx, education_idx) for each (cpu_idx, run_idx)
    ((0, 0, 0), (1, 1, 1), (2, 2, 2)),
    ((0, 1, 2), (1, 2, 0), (2, 0, 1)),
    ((0, 2, 1), (1, 0, 2), (2, 1, 0)),
)


class OrthogonalArrayDesign(Design):
    """A 3-level orthogonal-array (Graeco-Latin square) fractional design.

    Reproduces the tutorial's slide-67 "smart selection of level
    combinations": four factors at three levels each covered in nine
    experiments such that every pair of levels of any two factors occurs
    exactly once.

    Requires exactly four factors, each with exactly three levels.
    """

    N_FACTORS = 4
    N_LEVELS = 3

    def __init__(self, space: FactorSpace):
        super().__init__(space)
        if len(space) != self.N_FACTORS:
            raise DesignError(
                f"the orthogonal-array design needs exactly "
                f"{self.N_FACTORS} factors, got {len(space)}")
        bad = [f.name for f in space if f.n_levels != self.N_LEVELS]
        if bad:
            raise DesignError(
                f"the orthogonal-array design needs {self.N_LEVELS}-level "
                f"factors; offending: {bad}")

    def __len__(self) -> int:
        return self.N_LEVELS ** 2

    @staticmethod
    def can_estimate_interactions() -> bool:
        return False  # interactions are traded away, per the tutorial

    def points(self) -> Iterator[DesignPoint]:
        f1, f2, f3, f4 = self.space.factors
        index = 0
        for row_idx, row in enumerate(_GRAECO_LATIN_3):
            for (m_idx, w_idx, e_idx) in row:
                config = {
                    f1.name: f1.levels[row_idx],
                    f2.name: f2.levels[m_idx],
                    f3.name: f3.levels[w_idx],
                    f4.name: f4.levels[e_idx],
                }
                yield DesignPoint(index=index, config=config, coded={})
                index += 1

    def verify_balance(self) -> bool:
        """Check the pairwise-balance property of the array.

        Every ordered pair of factors sees each level pair the same number
        of times (once, for the 3x3 square).
        """
        points = list(self.points())
        names = self.space.names
        for a, b in itertools.combinations(names, 2):
            counts: Dict[Tuple[Any, Any], int] = {}
            for p in points:
                key = (p[a], p[b])
                counts[key] = counts.get(key, 0) + 1
            if len(counts) != self.N_LEVELS ** 2:
                return False
            if any(c != 1 for c in counts.values()):
                return False
        return True


def simple_design_size(level_counts: Sequence[int]) -> int:
    """Closed form ``1 + sum(n_i - 1)`` for a simple design."""
    if any(n < 2 for n in level_counts):
        raise DesignError("every factor needs at least 2 levels")
    return 1 + sum(n - 1 for n in level_counts)


def full_factorial_size(level_counts: Sequence[int]) -> int:
    """Closed form ``prod(n_i)`` for a full factorial design."""
    if any(n < 2 for n in level_counts):
        raise DesignError("every factor needs at least 2 levels")
    size = 1
    for n in level_counts:
        size *= n
    return size


def two_level_size(k: int) -> int:
    """Closed form ``2^k``."""
    if k < 1:
        raise DesignError("k must be >= 1")
    return 2 ** k


def fractional_size(k: int, p: int) -> int:
    """Closed form ``2^(k-p)``."""
    if not 0 < p < k:
        raise DesignError("need 0 < p < k")
    return 2 ** (k - p)
