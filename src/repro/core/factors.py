"""Factors, levels, and factor spaces for experiment design.

Terminology follows the tutorial (slide "Experiment design terminology",
after Raj Jain):

- *response*: the measured result of one experiment;
- *factor*: any variable that affects the response (a parameter to set or
  an environment variable);
- *levels*: the values a factor may take;
- *design*: the chosen combinations of factor levels (see
  :mod:`repro.core.designs`).

A :class:`Factor` is an ordered, named set of levels.  Two-level factors
additionally expose the conventional *coded* values -1/+1 used by the
sign-table method.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Sequence, Tuple

from repro.errors import DesignError

#: Coded value conventionally assigned to the first ("low") level.
LOW = -1
#: Coded value conventionally assigned to the second ("high") level.
HIGH = 1


@dataclass(frozen=True)
class Factor:
    """A named experimental factor with an ordered list of levels.

    Parameters
    ----------
    name:
        Identifier used in design tables and result records.  Must be a
        non-empty string without whitespace (it doubles as a column name).
    levels:
        The values the factor can take, in a fixed order.  Order matters:
        for two-level factors, ``levels[0]`` is coded -1 and ``levels[1]``
        is coded +1.
    unit:
        Optional unit string used when labelling charts ("MB", "ms", ...).
    description:
        Optional human-readable description for generated documentation.
    """

    name: str
    levels: Tuple[Any, ...]
    unit: str = ""
    description: str = ""

    def __init__(self, name: str, levels: Sequence[Any], unit: str = "",
                 description: str = ""):
        if not name or any(ch.isspace() for ch in name):
            raise DesignError(
                "factor name must be a non-empty string without whitespace, "
                f"got {name!r}")
        levels = tuple(levels)
        if len(levels) < 2:
            raise DesignError(
                f"factor {name!r} needs at least 2 levels, got {len(levels)}")
        if len(set(map(repr, levels))) != len(levels):
            raise DesignError(f"factor {name!r} has duplicate levels")
        object.__setattr__(self, "name", name)
        object.__setattr__(self, "levels", levels)
        object.__setattr__(self, "unit", unit)
        object.__setattr__(self, "description", description)

    @property
    def n_levels(self) -> int:
        """Number of levels of this factor."""
        return len(self.levels)

    @property
    def is_two_level(self) -> bool:
        """True if the factor has exactly two levels (usable in 2^k designs)."""
        return self.n_levels == 2

    @property
    def low(self) -> Any:
        """The level coded -1 (only meaningful for two-level factors)."""
        return self.levels[0]

    @property
    def high(self) -> Any:
        """The level coded +1 (only meaningful for two-level factors)."""
        return self.levels[-1]

    def code(self, level: Any) -> int:
        """Return the -1/+1 coded value of *level* for a two-level factor."""
        if not self.is_two_level:
            raise DesignError(
                f"factor {self.name!r} has {self.n_levels} levels; "
                "coded values are defined only for two-level factors")
        if level == self.levels[0]:
            return LOW
        if level == self.levels[1]:
            return HIGH
        raise DesignError(
            f"{level!r} is not a level of factor {self.name!r}")

    def decode(self, coded: int) -> Any:
        """Return the raw level for a -1/+1 coded value."""
        if coded == LOW:
            return self.low
        if coded == HIGH:
            return self.high
        raise DesignError(
            f"coded value must be -1 or +1, got {coded!r}")

    def index_of(self, level: Any) -> int:
        """Return the position of *level* in the level list."""
        for i, candidate in enumerate(self.levels):
            if candidate == level:
                return i
        raise DesignError(
            f"{level!r} is not a level of factor {self.name!r}")

    def label(self) -> str:
        """Axis-ready label including the unit if one was given."""
        if self.unit:
            return f"{self.name} ({self.unit})"
        return self.name


def two_level(name: str, low: Any, high: Any, unit: str = "",
              description: str = "") -> Factor:
    """Convenience constructor for a two-level factor."""
    return Factor(name, (low, high), unit=unit, description=description)


@dataclass(frozen=True)
class FactorSpace:
    """An ordered collection of distinct factors.

    The space defines the full cartesian set of configurations an
    experiment could explore; designs select subsets of it.
    """

    factors: Tuple[Factor, ...]
    _by_name: Mapping[str, Factor] = field(repr=False, compare=False,
                                           default=None)

    def __init__(self, factors: Sequence[Factor]):
        factors = tuple(factors)
        if not factors:
            raise DesignError("a factor space needs at least one factor")
        by_name: Dict[str, Factor] = {}
        for factor in factors:
            if factor.name in by_name:
                raise DesignError(f"duplicate factor name {factor.name!r}")
            by_name[factor.name] = factor
        object.__setattr__(self, "factors", factors)
        object.__setattr__(self, "_by_name", by_name)

    def __len__(self) -> int:
        return len(self.factors)

    def __iter__(self) -> Iterator[Factor]:
        return iter(self.factors)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __getitem__(self, name: str) -> Factor:
        try:
            return self._by_name[name]
        except KeyError:
            raise DesignError(f"unknown factor {name!r}; "
                              f"known: {sorted(self._by_name)}") from None

    @property
    def names(self) -> Tuple[str, ...]:
        """Factor names in declaration order."""
        return tuple(f.name for f in self.factors)

    @property
    def all_two_level(self) -> bool:
        """True if every factor has exactly two levels."""
        return all(f.is_two_level for f in self.factors)

    def full_size(self) -> int:
        """Number of configurations in the full cartesian product."""
        size = 1
        for factor in self.factors:
            size *= factor.n_levels
        return size

    def validate_configuration(self, config: Mapping[str, Any]) -> None:
        """Raise :class:`DesignError` unless *config* assigns a valid level
        to every factor and mentions no unknown factor."""
        missing = [n for n in self.names if n not in config]
        if missing:
            raise DesignError(f"configuration is missing factors {missing}")
        unknown = [n for n in config if n not in self._by_name]
        if unknown:
            raise DesignError(f"configuration has unknown factors {unknown}")
        for name, level in config.items():
            self._by_name[name].index_of(level)


@dataclass(frozen=True)
class DesignPoint:
    """One row of a design: a complete factor-level assignment.

    ``config`` maps factor name to raw level; ``coded`` maps factor name to
    the -1/+1 code when the underlying design is two-level (empty dict
    otherwise).  ``index`` is the row's position in the design.
    """

    index: int
    config: Mapping[str, Any]
    coded: Mapping[str, int]

    def __getitem__(self, name: str) -> Any:
        return self.config[name]

    def as_tuple(self, names: Sequence[str]) -> Tuple[Any, ...]:
        """Levels in the order given by *names* (for table rendering)."""
        return tuple(self.config[name] for name in names)


def interaction_name(names: Sequence[str]) -> str:
    """Canonical name of an interaction column, e.g. ``'A:B'``.

    Main effects keep their bare factor name; interactions join the sorted
    factor names with ``':'`` so that ``A:B`` and ``B:A`` denote the same
    column.
    """
    names = sorted(names)
    if not names:
        return "I"
    return ":".join(names)


def parse_interaction(column: str) -> List[str]:
    """Split an interaction column name back into its factor names."""
    if column == "I":
        return []
    return column.split(":")
