"""Effect estimation for 2^k and 2^(k-p) designs (the sign-table method).

Given the responses of a design's experiments (in design row order), the
sign-table method computes each model coefficient as::

    q_col = (column . y) / n_rows

For a full 2^k design the recovered :class:`~repro.core.model.AdditiveModel`
reproduces the responses exactly; for fractional designs the coefficients
are *confounded* sums of aliased effects (see
:mod:`repro.core.confounding`).
"""

from __future__ import annotations

from typing import Dict, Sequence

import numpy as np

from repro.core.designs import (
    FractionalFactorialDesign,
    TwoLevelFactorialDesign,
)
from repro.core.model import AdditiveModel, model_from_effects
from repro.core.signtable import SignTable, dot_effects
from repro.errors import DesignError


def estimate_effects(design: TwoLevelFactorialDesign | FractionalFactorialDesign,
                     responses: Sequence[float]) -> AdditiveModel:
    """Fit the additive model from one response per design row.

    Responses must be ordered like :meth:`Design.points` yields rows.
    """
    table = design.sign_table
    effects = dot_effects(table, responses)
    return model_from_effects(effects, design.space.names)


def estimate_effects_from_table(table: SignTable,
                                responses: Sequence[float]) -> Dict[str, float]:
    """Raw sign-table coefficients without wrapping in a model."""
    return dot_effects(table, responses)


def estimate_effects_replicated(design: TwoLevelFactorialDesign,
                                replicated: Sequence[Sequence[float]]
                                ) -> AdditiveModel:
    """Fit effects from ``r`` replications per design row.

    *replicated* is a sequence of per-row response lists; the model is
    fitted to the per-row means (the standard 2^k·r analysis).  Error
    analysis on the residuals lives in :mod:`repro.core.replication`.
    """
    if len(replicated) != design.sign_table.n_rows:
        raise DesignError(
            f"expected {design.sign_table.n_rows} rows of replications, "
            f"got {len(replicated)}")
    r = len(replicated[0])
    if r < 1 or any(len(row) != r for row in replicated):
        raise DesignError("every row needs the same positive replication count")
    means = [float(np.mean(row)) for row in replicated]
    return estimate_effects(design, means)


def responses_from_model(design: TwoLevelFactorialDesign,
                         model: AdditiveModel) -> list:
    """Responses the model predicts for every design row, in row order.

    Useful for round-trip testing: ``estimate_effects(design,
    responses_from_model(design, m))`` recovers ``m`` exactly (for full
    designs whose sign table carries all interaction orders).
    """
    return [model.predict(point.coded) for point in design.points()]


def solve_two_by_two(y1: float, y2: float, y3: float, y4: float
                     ) -> Dict[str, float]:
    """The tutorial's explicit 2^2 resolution (slides 73-77).

    Rows follow the slide's experiment order:
    (xA, xB) = (-1,-1), (+1,-1), (-1,+1), (+1,+1).

    Returns ``{'q0': ..., 'qA': ..., 'qB': ..., 'qAB': ...}``.
    """
    return {
        "q0": (y1 + y2 + y3 + y4) / 4.0,
        "qA": (-y1 + y2 - y3 + y4) / 4.0,
        "qB": (-y1 - y2 + y3 + y4) / 4.0,
        "qAB": (y1 - y2 - y3 + y4) / 4.0,
    }
