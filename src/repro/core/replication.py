"""Replication and experimental-error analysis for 2^k·r designs.

The tutorial's first "common mistake" is ignoring the variation due to
experimental error: the variation attributed to a factor must be compared
against it.  With ``r`` replications per design row the within-cell
residuals estimate the error variance, every effect coefficient gets a
standard deviation, and confidence intervals decide which effects are
statistically significant (an interval containing zero means the effect is
indistinguishable from noise).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Sequence, Tuple

import numpy as np
from scipy import stats as _scipy_stats

from repro.core.designs import TwoLevelFactorialDesign
from repro.core.effects import estimate_effects_replicated
from repro.core.model import AdditiveModel
from repro.errors import DesignError


def _refuse_failed_points(matrix: np.ndarray, where: str) -> None:
    """Refuse NaN cells — failed runs must be handled, not averaged.

    A resilient harness records failed design points explicitly
    (:class:`repro.measurement.harness.FailedPoint`); feeding their
    placeholder NaNs into an error-variance estimate would silently
    poison every interval.  The fix is the caller's call: re-run the
    failed points, raise the retry budget, or analyse an explicitly
    masked sub-design.
    """
    bad = np.argwhere(~np.isfinite(matrix))
    if bad.size:
        cells = ", ".join(f"row {r} rep {c}" for r, c in bad[:6].tolist())
        more = "" if len(bad) <= 6 else f" (+{len(bad) - 6} more)"
        raise DesignError(
            f"{where}: {len(bad)} response cell(s) are NaN/inf — failed "
            f"or missing runs at {cells}{more}.  Re-measure those design "
            "points (see HarnessReport.failures) or analyse a masked "
            "subset; a full-design analysis cannot absorb missing cells.")


@dataclass(frozen=True)
class EffectInterval:
    """A confidence interval around one effect coefficient."""

    name: str
    value: float
    stddev: float
    low: float
    high: float
    confidence: float

    @property
    def significant(self) -> bool:
        """True if the interval excludes zero."""
        return self.low > 0 or self.high < 0


@dataclass(frozen=True)
class ReplicatedAnalysis:
    """Full analysis of a replicated 2^k design.

    Attributes
    ----------
    model:
        Effects fitted to per-row means.
    sse:
        Sum of squared within-cell residuals.
    error_variance:
        ``sse / (2^k (r-1))`` — the experimental error variance estimate.
    error_dof:
        Degrees of freedom of the error estimate, ``2^k (r-1)``.
    intervals:
        Confidence interval per effect (excluding the mean's key ``'I'``,
        which is included too since the mean also has an interval).
    """

    model: AdditiveModel
    replications: int
    sse: float
    error_variance: float
    error_dof: int
    intervals: Mapping[str, EffectInterval]

    def significant_effects(self) -> Tuple[str, ...]:
        """Names of effects whose CIs exclude zero, strongest first."""
        hits = [iv for name, iv in self.intervals.items()
                if name != "I" and iv.significant]
        hits.sort(key=lambda iv: abs(iv.value), reverse=True)
        return tuple(iv.name for iv in hits)

    def format(self) -> str:
        lines = [
            f"replications per row : {self.replications}",
            f"error variance       : {self.error_variance:.6g} "
            f"(dof={self.error_dof})",
            "effect        value       CI",
        ]
        for name, iv in self.intervals.items():
            flag = "*" if (name != "I" and iv.significant) else " "
            lines.append(
                f"  {name:<10} {iv.value:>10.4g}  "
                f"[{iv.low:.4g}, {iv.high:.4g}] {flag}")
        lines.append("(* = significant: confidence interval excludes zero)")
        return "\n".join(lines)


def analyze_replicated(design: TwoLevelFactorialDesign,
                       replicated: Sequence[Sequence[float]],
                       confidence: float = 0.90) -> ReplicatedAnalysis:
    """Analyse a 2^k design with ``r >= 2`` replications per row.

    Standard results for 2^k·r designs (Jain, ch. 18): each coefficient's
    variance is ``s_e^2 / (2^k r)`` and intervals use Student's t with
    ``2^k (r-1)`` degrees of freedom.
    """
    if not 0 < confidence < 1:
        raise DesignError(f"confidence must be in (0,1), got {confidence}")
    n = design.sign_table.n_rows
    if len(replicated) != n:
        raise DesignError(f"expected {n} rows, got {len(replicated)}")
    r = len(replicated[0])
    if r < 2 or any(len(row) != r for row in replicated):
        raise DesignError(
            "replicated analysis needs the same replication count >= 2 "
            "per row")
    matrix = np.asarray(replicated, dtype=float)
    _refuse_failed_points(matrix, "analyze_replicated")
    model = estimate_effects_replicated(design, replicated)
    means = matrix.mean(axis=1)
    sse = float(np.sum((matrix - means[:, None]) ** 2))
    dof = n * (r - 1)
    error_variance = sse / dof
    coeff_std = float(np.sqrt(error_variance / (n * r)))
    t = float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    half = t * coeff_std
    intervals: Dict[str, EffectInterval] = {}
    for name, value in model.coefficients.items():
        intervals[name] = EffectInterval(
            name=name, value=value, stddev=coeff_std,
            low=value - half, high=value + half, confidence=confidence)
    return ReplicatedAnalysis(
        model=model, replications=r, sse=sse,
        error_variance=error_variance, error_dof=dof, intervals=intervals)
