"""The tutorial's recommended two-stage experiment methodology.

Slide 59 / 110-113: (1) run a cheap 2^k or 2^(k-p) screening design and
evaluate factor importance via allocation of variation; (2) keep only the
important factors, possibly refine their levels, and run a detailed (full
factorial) study, pinning the unimportant factors to a baseline.

:func:`screen_and_refine` drives the whole pipeline against any callable
``experiment(config) -> response``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Sequence, Tuple

from repro.core.designs import (
    Design,
    FractionalFactorialDesign,
    FullFactorialDesign,
    TwoLevelFactorialDesign,
)
from repro.core.factors import Factor, FactorSpace
from repro.core.model import AdditiveModel
from repro.core.effects import estimate_effects
from repro.core.variation import VariationReport, allocate_variation
from repro.errors import DesignError

ExperimentFn = Callable[[Mapping[str, Any]], float]


@dataclass(frozen=True)
class ScreeningResult:
    """Outcome of the first (screening) stage."""

    design: Design
    responses: Tuple[float, ...]
    model: AdditiveModel
    variation: VariationReport
    selected: Tuple[str, ...]

    def importance(self, factor: str) -> float:
        """Percentage of variation the factor's main effect explains."""
        return self.variation.percent(factor)


@dataclass(frozen=True)
class RefinementResult:
    """Outcome of the second (detailed) stage."""

    design: FullFactorialDesign
    responses: Tuple[float, ...]
    configurations: Tuple[Dict[str, Any], ...]
    best_configuration: Dict[str, Any]
    best_response: float


@dataclass(frozen=True)
class TwoStageResult:
    """The full pipeline outcome."""

    screening: ScreeningResult
    refinement: RefinementResult


def run_design(design: Design, experiment: ExperimentFn) -> Tuple[float, ...]:
    """Execute *experiment* at every design point, in design order."""
    return tuple(float(experiment(point.config)) for point in design.points())


def screen(space: FactorSpace, experiment: ExperimentFn,
           generators: Optional[Mapping[str, Sequence[str]]] = None,
           base_factors: Optional[Sequence[str]] = None,
           keep: int = 2,
           min_percent: float = 0.0) -> ScreeningResult:
    """Stage one: run a 2^k (or 2^(k-p) when generators are given) design.

    Factors are ranked by the percentage of variation their *main effect*
    explains; the top ``keep`` factors clearing ``min_percent`` are
    selected for refinement.
    """
    if keep < 1:
        raise DesignError("keep must be >= 1")
    if generators:
        if base_factors is None:
            base_factors = [n for n in space.names if n not in generators]
        design: Design = FractionalFactorialDesign(
            space, base_factors, generators)
    else:
        design = TwoLevelFactorialDesign(space)
    responses = run_design(design, experiment)
    model = estimate_effects(design, responses)

    # Allocation of variation needs a full-factorial sign table; for a
    # fractional screen we allocate over the fraction's own columns, which
    # still ranks main effects correctly under sparsity of effects.
    if isinstance(design, TwoLevelFactorialDesign):
        variation = allocate_variation(design, responses)
    else:
        from repro.core.signtable import dot_effects
        import numpy as np
        y = np.asarray(responses, dtype=float)
        effects = dot_effects(design.sign_table, responses)
        n = design.sign_table.n_rows
        sst = float(np.sum((y - y.mean()) ** 2))
        components = {name: n * q * q
                      for name, q in effects.items() if name != "I"}
        variation = VariationReport(sst=sst, components=components)

    ranked = sorted(space.names,
                    key=lambda name: variation.percent(name), reverse=True)
    selected = tuple(name for name in ranked[:keep]
                     if variation.percent(name) >= min_percent)
    if not selected:
        selected = (ranked[0],)
    return ScreeningResult(design=design, responses=responses, model=model,
                           variation=variation, selected=selected)


def refine(space: FactorSpace, experiment: ExperimentFn,
           selected: Sequence[str],
           refined_levels: Optional[Mapping[str, Sequence[Any]]] = None,
           baseline: Optional[Mapping[str, Any]] = None,
           minimize: bool = True) -> RefinementResult:
    """Stage two: full factorial over the selected factors.

    Unselected factors are pinned to ``baseline`` (default: their low
    level).  ``refined_levels`` may widen or densify the level grid of a
    selected factor.
    """
    if not selected:
        raise DesignError("refinement needs at least one selected factor")
    for name in selected:
        if name not in space:
            raise DesignError(f"unknown selected factor {name!r}")
    if baseline is None:
        baseline = {f.name: f.levels[0] for f in space}
    refined_levels = dict(refined_levels or {})

    sub_factors = []
    for name in selected:
        original = space[name]
        levels = refined_levels.get(name, original.levels)
        sub_factors.append(Factor(name, levels, unit=original.unit,
                                  description=original.description))
    sub_space = FactorSpace(sub_factors)
    design = FullFactorialDesign(sub_space)

    configurations = []
    responses = []
    for point in design.points():
        config = dict(baseline)
        config.update(point.config)
        configurations.append(config)
        responses.append(float(experiment(config)))

    chooser = min if minimize else max
    best_idx = chooser(range(len(responses)), key=lambda i: responses[i])
    return RefinementResult(
        design=design,
        responses=tuple(responses),
        configurations=tuple(configurations),
        best_configuration=configurations[best_idx],
        best_response=responses[best_idx])


def screen_and_refine(space: FactorSpace, experiment: ExperimentFn,
                      generators: Optional[Mapping[str, Sequence[str]]] = None,
                      keep: int = 2,
                      refined_levels: Optional[Mapping[str, Sequence[Any]]] = None,
                      baseline: Optional[Mapping[str, Any]] = None,
                      minimize: bool = True) -> TwoStageResult:
    """Run the complete two-stage methodology."""
    screening = screen(space, experiment, generators=generators, keep=keep)
    refinement = refine(space, experiment, screening.selected,
                        refined_levels=refined_levels, baseline=baseline,
                        minimize=minimize)
    return TwoStageResult(screening=screening, refinement=refinement)
