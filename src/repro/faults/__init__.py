"""Fault injection: deterministic failure noise for the simulated stack.

The tutorial's war stories are about experiments that die mid-campaign —
a cron job fires, a disk hiccups, the server drops the client — and its
prescription is protocols that *survive and report* such failures
instead of silently absorbing them.  :class:`~repro.faults.plan.FaultPlan`
complements the timing-only :class:`~repro.measurement.noise.NoiseModel`
with *failure* noise: a seeded, reproducible schedule of injected
exceptions raised from hooks inside MiniDB's disk model, buffer pool,
client, and engine.

Injection sites (see :data:`~repro.faults.plan.KNOWN_SITES`):

- ``disk.read`` — :meth:`repro.db.disk.DiskModel.read_seconds` raises
  :class:`~repro.errors.TransientDiskError`;
- ``buffer.read`` — :class:`repro.db.buffer.BufferPool` scans raise
  :class:`~repro.errors.PageCorruptionError` (non-transient);
- ``client.run`` — :class:`repro.db.client.Client` raises
  :class:`~repro.errors.ClientDisconnectError`;
- ``engine.execute`` — :class:`repro.db.engine.Engine` raises
  :class:`~repro.errors.QueryTimeoutError`.

The resilient measurement harness (:func:`repro.measurement.run_harness`
with a :class:`~repro.measurement.retry.RetryPolicy`) turns these faults
into retries, recorded failures, and checkpoint/resume material.
"""

from repro.faults.plan import (
    DEFAULT_SITE_ERRORS,
    KNOWN_SITES,
    TRANSIENT_SITES,
    FaultEvent,
    FaultInjector,
    FaultPlan,
    FaultRule,
)

__all__ = [
    "DEFAULT_SITE_ERRORS",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "KNOWN_SITES",
    "TRANSIENT_SITES",
]
