"""Fault plans and injectors: seeded, deterministic failure schedules.

A :class:`FaultPlan` is the immutable *specification* of which faults can
fire where: per-site probabilities (a fault coin flipped at every hooked
operation) and/or explicit schedules (fire exactly at the Nth operation
of a site).  :meth:`FaultPlan.injector` builds the mutable runtime
counterpart, a :class:`FaultInjector`, whose per-rule random streams are
derived from ``(seed, rule index)`` so the fault schedule of one site
never perturbs another's — the property the determinism tests pin down.

The injector is *resumable*: :meth:`FaultInjector.state_dict` captures
operation counters and RNG states in JSON-serialisable form, and
:meth:`FaultInjector.load_state_dict` restores them, which is how a
checkpointed campaign resumes with a byte-identical fault stream.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple, Type

import numpy as np

from repro.errors import (
    ClientDisconnectError,
    FaultError,
    PageCorruptionError,
    QueryTimeoutError,
    TransientDiskError,
)
from repro.obs import emit_event

#: Site name -> the exception class injected there by default.
DEFAULT_SITE_ERRORS: Mapping[str, Type[FaultError]] = {
    "disk.read": TransientDiskError,
    "buffer.read": PageCorruptionError,
    "client.run": ClientDisconnectError,
    "engine.execute": QueryTimeoutError,
}

#: Every injection site wired into the MiniDB stack.
KNOWN_SITES: Tuple[str, ...] = tuple(DEFAULT_SITE_ERRORS)

#: Sites whose default fault is recoverable by retrying.
TRANSIENT_SITES: Tuple[str, ...] = ("disk.read", "client.run",
                                    "engine.execute")


@dataclass(frozen=True)
class FaultRule:
    """One fault source: where it fires, what it raises, when.

    Parameters
    ----------
    site:
        The injection site name (usually one of :data:`KNOWN_SITES`).
    error:
        The :class:`~repro.errors.FaultError` subclass to raise.
    probability:
        Per-operation firing probability in ``[0, 1)``.
    schedule:
        Explicit 1-based operation numbers at which the fault fires
        unconditionally (in addition to any probabilistic firings).
    message:
        Optional custom exception message.
    """

    site: str
    error: Type[FaultError]
    probability: float = 0.0
    schedule: Tuple[int, ...] = ()
    message: str = ""

    def __post_init__(self):
        if not self.site:
            raise FaultError("fault rule needs a non-empty site name")
        if not (isinstance(self.error, type)
                and issubclass(self.error, FaultError)):
            raise FaultError(
                f"fault rule error must be a FaultError subclass, "
                f"got {self.error!r}")
        if not 0.0 <= self.probability < 1.0:
            raise FaultError(
                f"fault probability must be in [0, 1), "
                f"got {self.probability}")
        object.__setattr__(self, "schedule",
                           tuple(sorted(set(self.schedule))))
        if any((not isinstance(n, int)) or n < 1 for n in self.schedule):
            raise FaultError(
                f"fault schedule entries must be positive operation "
                f"numbers, got {list(self.schedule)}")
        if self.probability == 0.0 and not self.schedule:
            raise FaultError(
                f"fault rule for site {self.site!r} can never fire: "
                "give it a probability or a schedule")

    def describe(self) -> str:
        parts = []
        if self.probability:
            parts.append(f"p={self.probability:g}/op")
        if self.schedule:
            parts.append(f"at ops {list(self.schedule)}")
        return f"{self.site}: {self.error.__name__} ({', '.join(parts)})"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable collection of fault rules.

    Build one per campaign, then hand fresh :meth:`injector` instances
    to the components under test.  Two plans with equal rules and seed
    produce injectors with identical fault schedules.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def uniform(cls, probability: float, seed: int = 0,
                sites: Sequence[str] = TRANSIENT_SITES) -> "FaultPlan":
        """Same per-operation probability at each *site* (default: the
        transient ones, so a retry policy can recover)."""
        rules = []
        for site in sites:
            error = DEFAULT_SITE_ERRORS.get(site)
            if error is None:
                raise FaultError(
                    f"unknown fault site {site!r}; known sites: "
                    f"{list(KNOWN_SITES)}")
            rules.append(FaultRule(site=site, error=error,
                                   probability=probability))
        return cls(rules=tuple(rules), seed=seed)

    @classmethod
    def scheduled(cls, site: str, operations: Sequence[int],
                  seed: int = 0,
                  error: Optional[Type[FaultError]] = None) -> "FaultPlan":
        """Fire deterministically at the given operation numbers."""
        if error is None:
            error = DEFAULT_SITE_ERRORS.get(site)
            if error is None:
                raise FaultError(
                    f"unknown fault site {site!r} and no error class "
                    f"given; known sites: {list(KNOWN_SITES)}")
        rule = FaultRule(site=site, error=error,
                         schedule=tuple(operations))
        return cls(rules=(rule,), seed=seed)

    def injector(self) -> "FaultInjector":
        """A fresh runtime injector for this plan."""
        return FaultInjector(self)

    def describe(self) -> str:
        if not self.rules:
            return "no faults injected"
        rules = "; ".join(rule.describe() for rule in self.rules)
        return f"faults (seed={self.seed}): {rules}"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the injector's audit log."""

    site: str
    operation: int
    error: str


class FaultInjector:
    """The mutable runtime of a :class:`FaultPlan`.

    Components call :meth:`tick` at each hooked operation; the injector
    counts operations per site and raises the planned exception when a
    rule fires.  Every firing is appended to :attr:`events` so reports
    can say exactly what went wrong and when — the paper's "report what
    went wrong" guideline made executable.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._counts: Dict[str, int] = {}
        self._rngs: List[np.random.Generator] = [
            np.random.default_rng([plan.seed & 0x7FFFFFFF, index])
            for index in range(len(plan.rules))]
        self.events: List[FaultEvent] = []
        self._enabled = True

    # -- runtime ----------------------------------------------------------

    def tick(self, site: str) -> None:
        """Register one operation at *site*; raises if a rule fires."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        if not self._enabled:
            return
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            # Exactly one RNG draw per (rule, operation) — even when a
            # schedule hit already decided — keeps the probabilistic
            # stream aligned across runs regardless of schedule contents.
            drew = (self._rngs[index].random() < rule.probability
                    if rule.probability else False)
            if count in rule.schedule or drew:
                self.events.append(FaultEvent(
                    site=site, operation=count,
                    error=rule.error.__name__))
                emit_event("fault.injected", site=site, operation=count,
                           error=rule.error.__name__)
                message = rule.message or (
                    f"injected {rule.error.__name__} at {site} "
                    f"operation #{count}")
                raise rule.error(message)

    def operations(self, site: str) -> int:
        """How many operations have been registered at *site*."""
        return self._counts.get(site, 0)

    @property
    def n_injected(self) -> int:
        return len(self.events)

    def disable(self) -> None:
        """Stop firing (counters still advance) — for teardown paths."""
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    def reset(self) -> None:
        """Back to the pristine plan state: exact fault replay."""
        self._counts.clear()
        self._rngs = [
            np.random.default_rng([self.plan.seed & 0x7FFFFFFF, index])
            for index in range(len(self.plan.rules))]
        self.events.clear()
        self._enabled = True

    # -- checkpoint/resume -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of counters, RNGs, and events."""
        return {
            "counts": dict(self._counts),
            "rng_states": [_jsonable(rng.bit_generator.state)
                           for rng in self._rngs],
            "events": [[e.site, e.operation, e.error]
                       for e in self.events],
        }

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (same plan required)."""
        rng_states = state.get("rng_states", [])
        if len(rng_states) != len(self.plan.rules):
            raise FaultError(
                f"fault state has {len(rng_states)} RNG streams but the "
                f"plan has {len(self.plan.rules)} rules — checkpoint "
                "from a different fault plan?")
        self._counts = {str(k): int(v)
                        for k, v in state.get("counts", {}).items()}
        for rng, saved in zip(self._rngs, rng_states):
            rng.bit_generator.state = saved
        self.events = [FaultEvent(site=s, operation=int(op), error=err)
                       for s, op, err in state.get("events", [])]

    def format_events(self) -> str:
        if not self.events:
            return "no faults fired"
        lines = [f"{len(self.events)} fault(s) fired:"]
        for event in self.events:
            lines.append(f"  {event.site} op#{event.operation}: "
                         f"{event.error}")
        return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars in RNG state to Python ints."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    return value
