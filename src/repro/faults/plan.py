"""Fault plans and injectors: seeded, deterministic failure schedules.

A :class:`FaultPlan` is the immutable *specification* of which faults can
fire where: per-site probabilities (a fault coin flipped at every hooked
operation) and/or explicit schedules (fire exactly at the Nth operation
of a site).  :meth:`FaultPlan.injector` builds the mutable runtime
counterpart, a :class:`FaultInjector`, whose per-rule random streams are
derived from ``(seed, rule index)`` so the fault schedule of one site
never perturbs another's — the property the determinism tests pin down.

The injector is *resumable*: :meth:`FaultInjector.state_dict` captures
operation counters and RNG states in JSON-serialisable form, and
:meth:`FaultInjector.load_state_dict` restores them, which is how a
checkpointed campaign resumes with a byte-identical fault stream.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

import numpy as np

from repro.errors import (
    ClientDisconnectError,
    FaultError,
    PageCorruptionError,
    QueryTimeoutError,
    TransientDiskError,
)
from repro.obs import emit_event

#: Site name -> the exception class injected there by default.
DEFAULT_SITE_ERRORS: Mapping[str, Type[FaultError]] = {
    "disk.read": TransientDiskError,
    "buffer.read": PageCorruptionError,
    "client.run": ClientDisconnectError,
    "engine.execute": QueryTimeoutError,
}

#: Every injection site wired into the MiniDB stack.
KNOWN_SITES: Tuple[str, ...] = tuple(DEFAULT_SITE_ERRORS)

#: Sites whose default fault is recoverable by retrying.
TRANSIENT_SITES: Tuple[str, ...] = ("disk.read", "client.run",
                                    "engine.execute")


@dataclass(frozen=True)
class FaultRule:
    """One fault source: where it fires, what it raises, when.

    Parameters
    ----------
    site:
        The injection site name (usually one of :data:`KNOWN_SITES`).
    error:
        The :class:`~repro.errors.FaultError` subclass to raise.
    probability:
        Per-operation firing probability in ``[0, 1)``.
    schedule:
        Explicit 1-based operation numbers at which the fault fires
        unconditionally (in addition to any probabilistic firings).
    message:
        Optional custom exception message.
    scope:
        Optional client/session label.  ``None`` (the default) keeps
        the historical behaviour: the rule sees *every* operation at
        its site.  A scoped rule only sees operations performed while
        the injector is inside :meth:`FaultInjector.scoped` with the
        same label, and counts them on a private per-scope counter —
        so a fault plan can target one client's traffic without
        perturbing anyone else's fault stream.
    """

    site: str
    error: Type[FaultError]
    probability: float = 0.0
    schedule: Tuple[int, ...] = ()
    message: str = ""
    scope: Optional[str] = None

    def __post_init__(self):
        if not self.site:
            raise FaultError("fault rule needs a non-empty site name")
        if not (isinstance(self.error, type)
                and issubclass(self.error, FaultError)):
            raise FaultError(
                f"fault rule error must be a FaultError subclass, "
                f"got {self.error!r}")
        if not 0.0 <= self.probability < 1.0:
            raise FaultError(
                f"fault probability must be in [0, 1), "
                f"got {self.probability}")
        object.__setattr__(self, "schedule",
                           tuple(sorted(set(self.schedule))))
        if any((not isinstance(n, int)) or n < 1 for n in self.schedule):
            raise FaultError(
                f"fault schedule entries must be positive operation "
                f"numbers, got {list(self.schedule)}")
        if self.probability == 0.0 and not self.schedule:
            raise FaultError(
                f"fault rule for site {self.site!r} can never fire: "
                "give it a probability or a schedule")
        if self.scope is not None and not self.scope:
            raise FaultError(
                f"fault rule for site {self.site!r} has an empty scope "
                "label; use None for an unscoped rule")

    def describe(self) -> str:
        parts = []
        if self.probability:
            parts.append(f"p={self.probability:g}/op")
        if self.schedule:
            parts.append(f"at ops {list(self.schedule)}")
        where = self.site if self.scope is None \
            else f"{self.site}@{self.scope}"
        return f"{where}: {self.error.__name__} ({', '.join(parts)})"


@dataclass(frozen=True)
class FaultPlan:
    """A seeded, immutable collection of fault rules.

    Build one per campaign, then hand fresh :meth:`injector` instances
    to the components under test.  Two plans with equal rules and seed
    produce injectors with identical fault schedules.
    """

    rules: Tuple[FaultRule, ...] = ()
    seed: int = 0

    def __post_init__(self):
        object.__setattr__(self, "rules", tuple(self.rules))

    @classmethod
    def uniform(cls, probability: float, seed: int = 0,
                sites: Sequence[str] = TRANSIENT_SITES,
                scope: Optional[str] = None) -> "FaultPlan":
        """Same per-operation probability at each *site* (default: the
        transient ones, so a retry policy can recover).  With *scope*,
        the faults only hit operations performed for that
        client/session (see :meth:`FaultInjector.scoped`)."""
        rules = []
        for site in sites:
            error = DEFAULT_SITE_ERRORS.get(site)
            if error is None:
                raise FaultError(
                    f"unknown fault site {site!r}; known sites: "
                    f"{list(KNOWN_SITES)}")
            rules.append(FaultRule(site=site, error=error,
                                   probability=probability, scope=scope))
        return cls(rules=tuple(rules), seed=seed)

    @classmethod
    def scheduled(cls, site: str, operations: Sequence[int],
                  seed: int = 0,
                  error: Optional[Type[FaultError]] = None,
                  scope: Optional[str] = None) -> "FaultPlan":
        """Fire deterministically at the given operation numbers.  With
        *scope*, the operation numbers count only that client's
        operations at the site."""
        if error is None:
            error = DEFAULT_SITE_ERRORS.get(site)
            if error is None:
                raise FaultError(
                    f"unknown fault site {site!r} and no error class "
                    f"given; known sites: {list(KNOWN_SITES)}")
        rule = FaultRule(site=site, error=error,
                         schedule=tuple(operations), scope=scope)
        return cls(rules=(rule,), seed=seed)

    def injector(self) -> "FaultInjector":
        """A fresh runtime injector for this plan."""
        return FaultInjector(self)

    def describe(self) -> str:
        if not self.rules:
            return "no faults injected"
        rules = "; ".join(rule.describe() for rule in self.rules)
        return f"faults (seed={self.seed}): {rules}"


@dataclass(frozen=True)
class FaultEvent:
    """One injected fault, for the injector's audit log.

    ``scope`` names the client/session a scoped rule hit (None for the
    classic unscoped rules), and ``operation`` is then the operation
    number *within that scope*.
    """

    site: str
    operation: int
    error: str
    scope: Optional[str] = None


class FaultInjector:
    """The mutable runtime of a :class:`FaultPlan`.

    Components call :meth:`tick` at each hooked operation; the injector
    counts operations per site and raises the planned exception when a
    rule fires.  Every firing is appended to :attr:`events` so reports
    can say exactly what went wrong and when — the paper's "report what
    went wrong" guideline made executable.
    """

    def __init__(self, plan: FaultPlan):
        self.plan = plan
        self._counts: Dict[str, int] = {}
        #: Per-(site, scope) operation counters for scoped rules; a
        #: scoped rule's schedule counts only its own client's traffic.
        self._scope_counts: Dict[Tuple[str, str], int] = {}
        self._active_scope: Optional[str] = None
        self._rngs: List[np.random.Generator] = [
            np.random.default_rng([plan.seed & 0x7FFFFFFF, index])
            for index in range(len(plan.rules))]
        self.events: List[FaultEvent] = []
        self._enabled = True

    # -- runtime ----------------------------------------------------------

    @contextmanager
    def scoped(self, scope: Optional[str]) -> Iterator["FaultInjector"]:
        """Attribute the enclosed operations to one client/session.

        Scoped rules (a :class:`FaultRule` with ``scope=...``) only see
        operations performed inside a matching ``scoped`` block, on
        their own per-scope counters and RNG streams.  Unscoped rules
        are completely unaffected — their counters, draws, and firings
        are byte-identical whether or not any scope is active, which is
        what keeps legacy campaigns (e.g. E21) unchanged.
        """
        previous = self._active_scope
        self._active_scope = scope
        try:
            yield self
        finally:
            self._active_scope = previous

    def tick(self, site: str) -> None:
        """Register one operation at *site*; raises if a rule fires."""
        count = self._counts.get(site, 0) + 1
        self._counts[site] = count
        scope = self._active_scope
        scope_count = 0
        if scope is not None:
            scope_count = self._scope_counts.get((site, scope), 0) + 1
            self._scope_counts[(site, scope)] = scope_count
        if not self._enabled:
            return
        for index, rule in enumerate(self.plan.rules):
            if rule.site != site:
                continue
            if rule.scope is not None:
                # Scoped rule: only operations of the matching client
                # exist for it; its RNG stream advances only on them.
                if rule.scope != scope:
                    continue
                rule_count = scope_count
            else:
                rule_count = count
            # Exactly one RNG draw per (rule, operation) — even when a
            # schedule hit already decided — keeps the probabilistic
            # stream aligned across runs regardless of schedule contents.
            drew = (self._rngs[index].random() < rule.probability
                    if rule.probability else False)
            if rule_count in rule.schedule or drew:
                self.events.append(FaultEvent(
                    site=site, operation=rule_count,
                    error=rule.error.__name__, scope=rule.scope))
                emit_event("fault.injected", site=site,
                           operation=rule_count,
                           error=rule.error.__name__,
                           scope=rule.scope or "")
                at = site if rule.scope is None \
                    else f"{site}@{rule.scope}"
                message = rule.message or (
                    f"injected {rule.error.__name__} at {at} "
                    f"operation #{rule_count}")
                raise rule.error(message)

    def operations(self, site: str,
                   scope: Optional[str] = None) -> int:
        """How many operations have been registered at *site* (with
        *scope*: only those attributed to that client/session)."""
        if scope is not None:
            return self._scope_counts.get((site, scope), 0)
        return self._counts.get(site, 0)

    @property
    def n_injected(self) -> int:
        return len(self.events)

    def disable(self) -> None:
        """Stop firing (counters still advance) — for teardown paths."""
        self._enabled = False

    def enable(self) -> None:
        self._enabled = True

    def reset(self) -> None:
        """Back to the pristine plan state: exact fault replay."""
        self._counts.clear()
        self._scope_counts.clear()
        self._rngs = [
            np.random.default_rng([self.plan.seed & 0x7FFFFFFF, index])
            for index in range(len(self.plan.rules))]
        self.events.clear()
        self._enabled = True

    # -- checkpoint/resume -------------------------------------------------

    def state_dict(self) -> Dict[str, Any]:
        """JSON-serialisable snapshot of counters, RNGs, and events."""
        state: Dict[str, Any] = {
            "counts": dict(self._counts),
            "rng_states": [_jsonable(rng.bit_generator.state)
                           for rng in self._rngs],
            "events": [[e.site, e.operation, e.error, e.scope]
                       for e in self.events],
        }
        # Only written when scoped rules were actually exercised, so
        # unscoped plans keep their historical checkpoint layout.
        if self._scope_counts:
            state["scope_counts"] = [[site, scope, count]
                                     for (site, scope), count
                                     in sorted(self._scope_counts.items())]
        return state

    def load_state_dict(self, state: Mapping[str, Any]) -> None:
        """Restore a :meth:`state_dict` snapshot (same plan required)."""
        rng_states = state.get("rng_states", [])
        if len(rng_states) != len(self.plan.rules):
            raise FaultError(
                f"fault state has {len(rng_states)} RNG streams but the "
                f"plan has {len(self.plan.rules)} rules — checkpoint "
                "from a different fault plan?")
        self._counts = {str(k): int(v)
                        for k, v in state.get("counts", {}).items()}
        self._scope_counts = {
            (str(site), str(scope)): int(count)
            for site, scope, count in state.get("scope_counts", [])}
        for rng, saved in zip(self._rngs, rng_states):
            rng.bit_generator.state = saved
        self.events = [
            FaultEvent(site=entry[0], operation=int(entry[1]),
                       error=entry[2],
                       scope=entry[3] if len(entry) > 3 else None)
            for entry in state.get("events", [])]

    def format_events(self) -> str:
        if not self.events:
            return "no faults fired"
        lines = [f"{len(self.events)} fault(s) fired:"]
        for event in self.events:
            at = event.site if event.scope is None \
                else f"{event.site}@{event.scope}"
            lines.append(f"  {at} op#{event.operation}: "
                         f"{event.error}")
        return "\n".join(lines)


def _jsonable(value: Any) -> Any:
    """Recursively convert numpy scalars in RNG state to Python ints."""
    if isinstance(value, dict):
        return {k: _jsonable(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.ndarray):
        return [_jsonable(v) for v in value.tolist()]
    return value
