"""Presentation: chart specs, guideline linting, gnuplot/ASCII output."""

from repro.viz.ascii import (
    render_bars,
    render_chart,
    render_pie,
    render_series_table,
    render_stacked_bars,
)
from repro.viz.charts import (
    ChartKind,
    ChartSpec,
    Series,
    bar_chart,
    line_chart,
    pie_chart,
)
from repro.viz.flamegraph import render_flamegraph, render_span_shares
from repro.viz.gnuplot import GnuplotScript, from_chart, size_ratio_settings
from repro.viz.guidelines import (
    Finding,
    MAX_BARS,
    MAX_LINE_CURVES,
    MAX_PIE_SLICES,
    MIN_HISTOGRAM_CELL_POINTS,
    StyleRegistry,
    errors_only,
    lint_chart,
)
from repro.viz.histogram import Histogram, bin_values, finest_valid_binning
from repro.viz.latex import (
    LatexTable,
    check_units_in_headers,
    escape,
    format_number,
    from_result_set,
)
from repro.viz.locale_check import (
    CorruptionReport,
    check_round_trip,
    detect_corruption,
    parse_correctly,
    simulate_locale_paste,
)

__all__ = [
    "ChartKind",
    "ChartSpec",
    "CorruptionReport",
    "Finding",
    "GnuplotScript",
    "Histogram",
    "LatexTable",
    "check_units_in_headers",
    "escape",
    "format_number",
    "from_result_set",
    "MAX_BARS",
    "MAX_LINE_CURVES",
    "MAX_PIE_SLICES",
    "MIN_HISTOGRAM_CELL_POINTS",
    "Series",
    "StyleRegistry",
    "bar_chart",
    "bin_values",
    "check_round_trip",
    "detect_corruption",
    "errors_only",
    "finest_valid_binning",
    "from_chart",
    "line_chart",
    "lint_chart",
    "parse_correctly",
    "pie_chart",
    "render_bars",
    "render_chart",
    "render_flamegraph",
    "render_span_shares",
    "render_pie",
    "render_series_table",
    "render_stacked_bars",
    "simulate_locale_paste",
    "size_ratio_settings",
]
