"""The locale copy-paste corruption of slide 212, as code.

The tutorial's war story: ``avgs.out`` holds averages like ``13.666``;
pasting into a locale-confused OpenOffice turns them into ``13666``
(the ``.`` parsed as a thousands separator) — and the broken graph is
"hard to figure out when you have to produce by hand 20 such graphs and
most of them look OK".

:func:`simulate_locale_paste` reproduces the corruption;
:func:`detect_corruption` is the guard an automated pipeline should run,
flagging values that jumped by ~10^3 relative to the column's scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ChartError


def simulate_locale_paste(texts: Sequence[str]) -> List[float]:
    """Parse decimal-point numbers the way a comma-decimal locale does.

    ``"13.666"`` → 13666.0 (dot taken as a thousands separator);
    ``"15"`` → 15.0.  This is the slide-212 bug, faithfully wrong.
    """
    out: List[float] = []
    for text in texts:
        cleaned = text.strip()
        if not cleaned:
            raise ChartError("empty cell cannot be pasted")
        # A comma-decimal locale treats '.' as a grouping separator.
        out.append(float(cleaned.replace(".", "")))
    return out


def parse_correctly(texts: Sequence[str]) -> List[float]:
    """The correct, locale-independent parse ('.' is the decimal mark)."""
    return [float(t.strip()) for t in texts]


@dataclass(frozen=True)
class CorruptionReport:
    """Outcome of a corruption scan."""

    suspicious_indices: Tuple[int, ...]
    values: Tuple[float, ...]

    @property
    def is_clean(self) -> bool:
        return not self.suspicious_indices

    def format(self) -> str:
        if self.is_clean:
            return "no locale corruption detected"
        cells = ", ".join(
            f"[{i}]={self.values[i]:g}" for i in self.suspicious_indices)
        return (f"possible locale corruption at {cells}: values jumped "
                f"by ~10^3 against the column median (slide 212)")


def detect_corruption(values: Sequence[float],
                      ratio_threshold: float = 100.0) -> CorruptionReport:
    """Flag values ``ratio_threshold``x above the column's low quartile.

    Locale corruption multiplies an affected cell by roughly 10^(number
    of decimals), so corrupted cells sit orders of magnitude above their
    neighbours.  The 25th percentile is the baseline (a median would be
    dragged upward when several cells are corrupted at once).  A column
    whose values legitimately span such ranges will false-positive —
    that is the point: a human must look.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ChartError("cannot scan an empty column")
    if ratio_threshold <= 1:
        raise ChartError("ratio threshold must exceed 1")
    positive = np.abs(arr[arr != 0])
    if positive.size == 0:
        return CorruptionReport(suspicious_indices=(),
                                values=tuple(float(v) for v in arr))
    baseline = float(np.percentile(positive, 25))
    suspicious = tuple(
        int(i) for i, v in enumerate(arr)
        if baseline > 0 and abs(v) / baseline >= ratio_threshold)
    return CorruptionReport(suspicious_indices=suspicious,
                            values=tuple(float(v) for v in arr))


def check_round_trip(texts: Sequence[str]) -> bool:
    """True when a locale-confused paste would corrupt this column.

    Compares the correct parse against the simulated bad parse; any
    difference means the column is vulnerable (it contains decimals).
    """
    good = parse_correctly(texts)
    bad = simulate_locale_paste(texts)
    return any(g != b for g, b in zip(good, bad))
