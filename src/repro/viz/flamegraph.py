"""ASCII flamegraphs: a trace's nested time shares, in the terminal.

The flamegraph answers slide 54's question at a glance: *where did the
time go?*  Each row is one nesting depth, each block one span, block
width proportional to the span's share of the rendered window.  Like the
other :mod:`repro.viz.ascii` renderings it exists so benchmark logs and
reports carry the *shape* of the figure inline.

::

    [harness.campaign ........................................ 812.4ms]
    [harness.point[0] ....][harness.point[1] ....][harness.point[2] ..]
    [protocol.execute ....][protocol.execute ....][protocol.execute ..]
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.errors import ChartError
from repro.obs.span import Span, Trace


def _format_ms(seconds: float) -> str:
    ms = seconds * 1000.0
    return f"{ms:.1f}ms" if ms < 10000 else f"{ms / 1000.0:.2f}s"


def _block(label: str, width: int) -> str:
    """One span block: ``[label ...]`` squeezed into *width* chars."""
    if width <= 1:
        return "|"
    if width == 2:
        return "[]"
    inner = width - 2
    if len(label) > inner:
        label = label[:inner - 1] + "~" if inner >= 2 else label[:inner]
    pad = inner - len(label)
    return "[" + label + "." * pad + "]"


def render_flamegraph(trace: Trace, width: int = 100,
                      max_depth: Optional[int] = None) -> str:
    """Render *trace* as an ASCII flamegraph.

    Parameters
    ----------
    trace:
        A closed :class:`~repro.obs.span.Trace` (any number of roots —
        sibling roots share the timeline, like Chrome's view).
    width:
        Total character columns of the time axis.
    max_depth:
        Deepest row to draw (``None``: everything).  Deeper spans are
        summarised in the footer instead of silently dropped.
    """
    if width < 20:
        raise ChartError(f"flamegraph needs width >= 20, got {width}")
    roots = trace.roots()
    if not roots:
        raise ChartError("cannot render an empty trace")
    t0 = min(span.start_s for span in roots)
    t1 = max(span.end_s for span in roots)
    window = t1 - t0
    if window <= 0:
        # Zero-duration traces (everything instantaneous): one row.
        return "\n".join(_block(f"{s.name} 0ms", width) for s in roots)

    def column(t: float) -> int:
        return int(round((t - t0) / window * width))

    rows: List[str] = []
    level: Sequence[Span] = roots
    depth = 0
    hidden = 0
    while level:
        if max_depth is not None and depth > max_depth:
            hidden += len(level)
            next_level: List[Span] = []
            for span in level:
                next_level.extend(trace.children(span))
            level = next_level
            depth += 1
            continue
        chars = [" "] * width
        for span in level:
            start = column(span.start_s)
            end = max(start + 1, column(span.end_s))  # always visible
            label = f"{span.name} {_format_ms(span.duration_s)}"
            block = _block(label, end - start)
            for i, ch in enumerate(block):
                if start + i < width:
                    chars[start + i] = ch
        rows.append("".join(chars).rstrip())
        next_level = []
        for span in level:
            next_level.extend(trace.children(span))
        level = next_level
        depth += 1
    header = (f"flamegraph: {len(trace)} spans, window "
              f"{_format_ms(window)} "
              f"({width} cols, {_format_ms(window / width)}/col)")
    lines = [header] + rows
    if hidden:
        lines.append(f"... {hidden} deeper span(s) below "
                     f"max_depth={max_depth} not drawn")
    return "\n".join(lines)


#: Longest span name printed verbatim by :func:`render_span_shares`;
#: operator names carry their whole expression list and would otherwise
#: stretch every row of the table.
MAX_SHARE_LABEL = 48


def render_span_shares(trace: Trace, top: int = 10,
                       width: int = 50) -> str:
    """Top spans by *self* time, flamegraph companion table.

    Groups spans by name, so the 24 executions of one operator across a
    campaign fold into one row — the "which primitive dominates"
    question slide 54 answers with its MIL trace.
    """
    if not trace.spans:
        raise ChartError("cannot summarise an empty trace")
    totals: dict = {}
    counts: dict = {}
    for span in trace.spans:
        totals[span.name] = totals.get(span.name, 0.0) + \
            trace.self_seconds(span)
        counts[span.name] = counts.get(span.name, 0) + 1
    ranked = [(name if len(name) <= MAX_SHARE_LABEL
               else name[:MAX_SHARE_LABEL - 1] + "~",
               counts[name], seconds)
              for name, seconds
              in sorted(totals.items(), key=lambda kv: -kv[1])[:top]]
    grand = sum(totals.values()) or 1.0
    name_width = max(len(label) for label, __, __ in ranked)
    lines = []
    for label, count, seconds in ranked:
        share = seconds / grand
        bar = "#" * max(1 if seconds > 0 else 0,
                        int(round(share * width)))
        lines.append(f"{label.ljust(name_width)} {100 * share:5.1f}% "
                     f"x{count:<4} |{bar} "
                     f"{_format_ms(seconds)}")
    return "\n".join(lines)
