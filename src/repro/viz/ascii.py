"""Terminal renderings of charts (used by the benchmark harness output).

Not a replacement for gnuplot — these exist so every benchmark can print
the *shape* of its figure directly into the bench log, which is where the
paper-vs-measured comparison in EXPERIMENTS.md comes from.
"""

from __future__ import annotations

from typing import Any, Sequence, Tuple

from repro.errors import ChartError
from repro.viz.charts import ChartKind, ChartSpec, Series


def render_bars(labels: Sequence[Any], values: Sequence[float],
                width: int = 50, unit: str = "") -> str:
    """A horizontal bar chart."""
    if len(labels) != len(values):
        raise ChartError("labels and values must have equal length")
    if not labels:
        raise ChartError("nothing to render")
    if any(v < 0 for v in values):
        raise ChartError("bar values must be >= 0")
    peak = max(values) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        bar = "#" * max(0, int(round(value / peak * width)))
        suffix = f" {value:g}{unit}"
        lines.append(f"{str(label).rjust(label_width)} |{bar}{suffix}")
    return "\n".join(lines)


def render_stacked_bars(labels: Sequence[Any],
                        components: Sequence[Tuple[str, Sequence[float]]],
                        width: int = 50, unit: str = "") -> str:
    """Stacked horizontal bars (e.g. CPU vs memory cost per machine).

    Each component gets a distinct fill character, cycled from ``#=+*o``.
    """
    if not components:
        raise ChartError("need at least one component")
    n = len(labels)
    for name, values in components:
        if len(values) != n:
            raise ChartError(
                f"component {name!r} has {len(values)} values for "
                f"{n} labels")
    fills = "#=+*o"
    totals = [sum(values[i] for __, values in components)
              for i in range(n)]
    peak = max(totals) or 1.0
    label_width = max(len(str(l)) for l in labels)
    lines = []
    legend = "  ".join(f"{fills[j % len(fills)]}={name}"
                       for j, (name, __) in enumerate(components))
    lines.append(f"{' ' * label_width}  [{legend}]")
    for i, label in enumerate(labels):
        bar = ""
        for j, (__, values) in enumerate(components):
            chars = int(round(values[i] / peak * width))
            bar += fills[j % len(fills)] * chars
        lines.append(f"{str(label).rjust(label_width)} |{bar} "
                     f"{totals[i]:.1f}{unit}")
    return "\n".join(lines)


def render_pie(labels: Sequence[str], values: Sequence[float],
               width: int = 40) -> str:
    """A pie chart as a percentage table with proportional bars."""
    if len(labels) != len(values):
        raise ChartError("labels and values must have equal length")
    total = float(sum(values))
    if total <= 0:
        raise ChartError("pie total must be positive")
    label_width = max(len(str(l)) for l in labels)
    lines = []
    for label, value in zip(labels, values):
        share = value / total
        bar = "#" * int(round(share * width))
        lines.append(f"{str(label).rjust(label_width)} "
                     f"{100 * share:5.1f}% |{bar}")
    return "\n".join(lines)


def render_series_table(series: Sequence[Series],
                        x_header: str = "x") -> str:
    """Aligned numeric table of several series over the same x values."""
    if not series:
        raise ChartError("nothing to render")
    xs = series[0].xs
    for s in series[1:]:
        if s.xs != xs:
            raise ChartError(
                "all series must share the same x values for a table")
    headers = [x_header] + [s.label for s in series]
    widths = [max(len(h), 12) for h in headers]
    lines = ["  ".join(h.rjust(w) for h, w in zip(headers, widths))]
    for i, x in enumerate(xs):
        cells = [str(x).rjust(widths[0])]
        for j, s in enumerate(series):
            cells.append(f"{s.ys[i]:.4g}".rjust(widths[j + 1]))
        lines.append("  ".join(cells))
    return "\n".join(lines)


def render_chart(chart: ChartSpec, width: int = 50) -> str:
    """Best-effort rendering of any ChartSpec."""
    header = f"== {chart.title} =="
    if chart.kind is ChartKind.PIE:
        body = render_pie(list(chart.series[0].xs),
                          list(chart.series[0].ys), width=width)
    elif chart.kind is ChartKind.BAR and chart.n_series == 1:
        body = render_bars(list(chart.series[0].xs),
                           list(chart.series[0].ys), width=width)
    else:
        body = render_series_table(chart.series,
                                   x_header=chart.x_label or "x")
    return f"{header}\n{body}"
