"""The chart-guidelines linter: the tutorial's presentation rules as code.

Rules implemented (slide numbers in parentheses):

- ``max-curves``: a line chart should show at most 6 curves (128);
- ``max-bars``: a bar chart at most 10 bars (128);
- ``max-slices``: a pie chart at most 8 components (128);
- ``axis-labels``: axes need informative labels (122);
- ``units``: quantitative axis labels must include units, e.g.
  "CPU time (ms)" (122);
- ``symbols``: labels should use keywords, not Greek-letter symbols —
  "the human brain is a poor join processor" (131);
- ``zero-origin``: the y axis starts at zero unless a break is justified
  — the MINE-vs-YOURS game (138);
- ``confidence-intervals``: random quantities need error bars (142);
- ``histogram-cells``: every histogram cell should hold >= 5 points (144);
- ``aspect-ratio``: useful height ~ 3/4 of useful width (141/146);
- ``style-consistency`` (via :class:`StyleRegistry`): a given curve keeps
  the same layout from one figure to the next (135);
- ``mixed-units``: one chart should not mix many result variables (129).

Serving-curve rules (added with experiment E24):

- ``tail-percentiles``: a latency-vs-offered-load chart must include at
  least one tail series (p95/p99/max) — a mean hides exactly the tail
  behaviour an overload study exists to show;
- ``saturation-coverage``: a throughput-vs-offered-load curve should
  extend past the saturation knee; a curve still climbing at its last
  point says nothing about where the system breaks.

Plan-quality rule (added with experiment E26):

- ``estimate-vs-actual``: a chart of optimizer estimates (cardinality
  estimates, estimated rows/cost) must also plot the observed series
  or their q-error ratio — estimates alone are the planner grading its
  own homework.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import GuidelineViolation
from repro.viz.charts import ChartKind, ChartSpec

MAX_LINE_CURVES = 6
MAX_BARS = 10
MAX_PIE_SLICES = 8
MIN_HISTOGRAM_CELL_POINTS = 5
RECOMMENDED_ASPECT = 0.75
ASPECT_TOLERANCE = 0.15

_UNIT_PATTERN = re.compile(r"\(.+\)|\bper\b|%|/")
_SYMBOL_PATTERN = re.compile(
    r"[λμσθαβγδ]|\\(lambda|mu|sigma|theta|alpha|beta)")
_LATENCY_PATTERN = re.compile(r"latency|response time", re.IGNORECASE)
_TAIL_PATTERN = re.compile(
    r"\bp\s?(9[05-9])(\.\d+)?\b|\b(9[05-9])(\.\d+)?th\b|\bmax(imum)?\b"
    r"|\btail\b", re.IGNORECASE)
_THROUGHPUT_PATTERN = re.compile(r"throughput|goodput", re.IGNORECASE)
_LOAD_PATTERN = re.compile(
    r"offered|arrival|load|clients|req(uest)?s?[ /]", re.IGNORECASE)
#: A final segment still climbing at more than this fraction of the
#: initial slope means the throughput curve never reached its knee.
SATURATION_SLOPE_FRACTION = 0.5
_ESTIMATE_PATTERN = re.compile(
    r"\bestimat\w*\b|\best\.?[_ ]?(rows|cost|cardinalit)", re.IGNORECASE)
_ACTUAL_PATTERN = re.compile(
    r"\bactual\w*\b|\bobserved\b|\bmeasured\b|\bq[- ]?error\b",
    re.IGNORECASE)


@dataclass(frozen=True)
class Finding:
    """One guideline violation."""

    rule: str
    severity: str      # "error" | "warning"
    message: str

    def format(self) -> str:
        return f"[{self.severity}] {self.rule}: {self.message}"


def lint_chart(chart: ChartSpec, strict: bool = False) -> Tuple[Finding, ...]:
    """Check one chart against every applicable rule.

    With ``strict=True`` the first error-severity finding raises
    :class:`~repro.errors.GuidelineViolation` instead of being returned.
    """
    findings: List[Finding] = []

    if chart.kind is ChartKind.LINE and chart.n_series > MAX_LINE_CURVES:
        findings.append(Finding(
            "max-curves", "error",
            f"{chart.n_series} curves on one line chart; the rule of "
            f"thumb is at most {MAX_LINE_CURVES}"))
    if chart.kind is ChartKind.BAR:
        bars = chart.total_points()
        if bars > MAX_BARS:
            findings.append(Finding(
                "max-bars", "error",
                f"{bars} bars on one column chart; limit is {MAX_BARS}"))
    if chart.kind is ChartKind.PIE:
        slices = chart.total_points()
        if slices > MAX_PIE_SLICES:
            findings.append(Finding(
                "max-slices", "error",
                f"{slices} pie components; limit is {MAX_PIE_SLICES}"))

    if chart.kind in (ChartKind.LINE, ChartKind.BAR, ChartKind.HISTOGRAM):
        if not chart.x_label:
            findings.append(Finding(
                "axis-labels", "error", "x axis has no label"))
        if not chart.y_label:
            findings.append(Finding(
                "axis-labels", "error", "y axis has no label"))
        if chart.y_label and not _UNIT_PATTERN.search(chart.y_label):
            findings.append(Finding(
                "units", "warning",
                f"y label {chart.y_label!r} has no unit; prefer "
                "'CPU time (ms)' over 'CPU time'"))

    for label in (chart.x_label, chart.y_label, chart.title):
        if label and _SYMBOL_PATTERN.search(label):
            findings.append(Finding(
                "symbols", "warning",
                f"label {label!r} uses symbols; use keywords instead — "
                "the reader's brain is a poor join processor"))
    for series in chart.series:
        if _SYMBOL_PATTERN.search(series.label):
            findings.append(Finding(
                "symbols", "warning",
                f"series label {series.label!r} uses symbols; spell it out"))

    if chart.kind in (ChartKind.LINE, ChartKind.BAR) \
            and not chart.y_starts_at_zero \
            and not chart.axis_break_justified:
        findings.append(Finding(
            "zero-origin", "error",
            "y axis does not start at zero and no axis break is "
            "justified — the 'MINE is better than YOURS' game"))

    for series in chart.series:
        if series.stochastic and series.y_err is None:
            findings.append(Finding(
                "confidence-intervals", "error",
                f"series {series.label!r} plots random quantities "
                "without confidence intervals"))

    if chart.kind is ChartKind.HISTOGRAM:
        for series in chart.series:
            thin = [(x, y) for x, y in zip(series.xs, series.ys)
                    if 0 < y < MIN_HISTOGRAM_CELL_POINTS]
            if thin:
                findings.append(Finding(
                    "histogram-cells", "warning",
                    f"{len(thin)} histogram cell(s) hold fewer than "
                    f"{MIN_HISTOGRAM_CELL_POINTS} points "
                    f"(e.g. cell {thin[0][0]!r})"))

    if chart.kind in (ChartKind.LINE, ChartKind.BAR):
        units = {s.unit for s in chart.series if s.unit}
        if len(units) > 1:
            findings.append(Finding(
                "mixed-units", "error",
                f"one chart mixes result variables with units "
                f"{sorted(units)} (slide 129: response time, throughput "
                "and utilization on one y axis — 'Huh?')"))

    if chart.kind in (ChartKind.LINE, ChartKind.BAR) \
            and chart.y_label and chart.x_label \
            and _LATENCY_PATTERN.search(chart.y_label) \
            and _LOAD_PATTERN.search(chart.x_label):
        has_tail = any(_TAIL_PATTERN.search(s.label)
                       for s in chart.series)
        if chart.series and not has_tail:
            findings.append(Finding(
                "tail-percentiles", "warning",
                f"latency chart {chart.title!r} plots no tail series "
                "(p95/p99/max); a mean or median hides exactly the "
                "tail behaviour an overload study exists to show"))

    if chart.kind is ChartKind.LINE \
            and chart.x_label and chart.y_label \
            and _LOAD_PATTERN.search(chart.x_label) \
            and _THROUGHPUT_PATTERN.search(chart.y_label):
        for series in chart.series:
            if len(series.xs) < 3:
                continue
            pairs = sorted(zip(series.xs, series.ys))
            (x0, y0), (x1, y1) = pairs[0], pairs[1]
            (xa, ya), (xb, yb) = pairs[-2], pairs[-1]
            if x1 <= x0 or xb <= xa:
                continue
            first_slope = (y1 - y0) / (x1 - x0)
            last_slope = (yb - ya) / (xb - xa)
            if first_slope > 0 and \
                    last_slope > SATURATION_SLOPE_FRACTION * first_slope:
                findings.append(Finding(
                    "saturation-coverage", "warning",
                    f"throughput curve {series.label!r} is still "
                    "climbing at its highest offered load; extend the "
                    "load axis past the saturation knee"))

    if chart.kind in (ChartKind.LINE, ChartKind.BAR) and chart.series:
        texts = [chart.title or "", chart.y_label or ""]
        texts.extend(s.label for s in chart.series)
        mentions_estimates = any(_ESTIMATE_PATTERN.search(t)
                                 for t in texts)
        mentions_actuals = any(_ACTUAL_PATTERN.search(t) for t in texts)
        if mentions_estimates and not mentions_actuals:
            findings.append(Finding(
                "estimate-vs-actual", "warning",
                f"chart {chart.title!r} plots optimizer estimates with "
                "no actual/observed series or q-error ratio; estimates "
                "alone are the planner grading its own homework"))

    if abs(chart.aspect_ratio - RECOMMENDED_ASPECT) > ASPECT_TOLERANCE:
        findings.append(Finding(
            "aspect-ratio", "warning",
            f"height/width = {chart.aspect_ratio:.2f}; the recommended "
            f"useful-area ratio is {RECOMMENDED_ASPECT}"))

    if strict:
        for finding in findings:
            if finding.severity == "error":
                raise GuidelineViolation(finding.format())
    return tuple(findings)


def errors_only(findings: Sequence[Finding]) -> Tuple[Finding, ...]:
    return tuple(f for f in findings if f.severity == "error")


class StyleRegistry:
    """Tracks series styles across figures (slide 135's rule).

    Register every chart of a paper; a series label appearing with two
    different styles yields a ``style-consistency`` finding.
    """

    def __init__(self):
        self._styles: Dict[str, Tuple[str, str]] = {}  # label -> (style, chart)
        self.findings: List[Finding] = []

    def register(self, chart: ChartSpec) -> Tuple[Finding, ...]:
        new: List[Finding] = []
        for series in chart.series:
            if not series.style:
                continue
            seen = self._styles.get(series.label)
            if seen is None:
                self._styles[series.label] = (series.style, chart.title)
            elif seen[0] != series.style:
                new.append(Finding(
                    "style-consistency", "error",
                    f"series {series.label!r} is {seen[0]!r} in "
                    f"{seen[1]!r} but {series.style!r} in "
                    f"{chart.title!r}; keep a curve's layout identical "
                    "across figures"))
        self.findings.extend(new)
        return tuple(new)
