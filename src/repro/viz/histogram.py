"""Histogram binning with the tutorial's cell-size rule (slide 144).

The same 36 response-time points can look like a detailed distribution
(six 2-unit cells) or a featureless two-bar plot (two 6-unit cells); the
tutorial's rule of thumb — at least five points per cell — bounds how
fine the binning may get, without uniquely determining it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import ChartError
from repro.viz.charts import ChartKind, ChartSpec, Series
from repro.viz.guidelines import MIN_HISTOGRAM_CELL_POINTS


@dataclass(frozen=True)
class Histogram:
    """Binned data: edges (len n+1) and per-cell counts (len n)."""

    edges: Tuple[float, ...]
    counts: Tuple[int, ...]

    def __post_init__(self):
        if len(self.edges) != len(self.counts) + 1:
            raise ChartError("need exactly one more edge than cells")

    @property
    def n_cells(self) -> int:
        return len(self.counts)

    @property
    def total(self) -> int:
        return int(sum(self.counts))

    def cell_labels(self) -> List[str]:
        return [f"[{self.edges[i]:g},{self.edges[i + 1]:g})"
                for i in range(self.n_cells)]

    def min_cell_count(self) -> int:
        occupied = [c for c in self.counts if c > 0]
        return min(occupied) if occupied else 0

    def satisfies_cell_rule(
            self, minimum: int = MIN_HISTOGRAM_CELL_POINTS) -> bool:
        """True if every non-empty cell holds at least ``minimum`` points."""
        return all(c == 0 or c >= minimum for c in self.counts)

    def to_chart(self, title: str, x_label: str) -> ChartSpec:
        series = Series(label="frequency", xs=tuple(self.cell_labels()),
                        ys=tuple(float(c) for c in self.counts))
        return ChartSpec(ChartKind.HISTOGRAM, title, (series,),
                         x_label=x_label, y_label="Frequency (count)")


def bin_values(values: Sequence[float], n_cells: int,
               low: float = None, high: float = None) -> Histogram:
    """Equal-width binning into ``n_cells`` cells.

    The last cell is closed on the right so the maximum is included.
    """
    if n_cells < 1:
        raise ChartError("need at least one cell")
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ChartError("cannot bin an empty sample")
    lo = float(arr.min()) if low is None else float(low)
    hi = float(arr.max()) if high is None else float(high)
    if lo >= hi:
        hi = lo + 1.0
    counts, edges = np.histogram(arr, bins=n_cells, range=(lo, hi))
    return Histogram(edges=tuple(float(e) for e in edges),
                     counts=tuple(int(c) for c in counts))


def finest_valid_binning(values: Sequence[float], max_cells: int = 50,
                         minimum: int = MIN_HISTOGRAM_CELL_POINTS
                         ) -> Histogram:
    """The most detailed equal-width binning obeying the cell rule.

    Searches cell counts from ``max_cells`` down to 1 and returns the
    first that keeps every non-empty cell at or above ``minimum`` points.
    One cell always satisfies the rule when the sample is big enough;
    tiny samples fall back to a single cell regardless.
    """
    arr = np.asarray(values, dtype=float)
    if arr.size == 0:
        raise ChartError("cannot bin an empty sample")
    for n_cells in range(max_cells, 0, -1):
        histogram = bin_values(arr, n_cells)
        if histogram.satisfies_cell_rule(minimum):
            return histogram
    return bin_values(arr, 1)
