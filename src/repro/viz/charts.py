"""Chart specifications: the structured form the guidelines lint.

A :class:`ChartSpec` is a renderer-independent description of one figure
(kind, axis labels with units, series with optional confidence
intervals).  The ASCII renderer, the gnuplot emitter, and the guidelines
linter all consume it.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Optional, Sequence, Tuple

from repro.errors import ChartError


class ChartKind(enum.Enum):
    LINE = "line"
    BAR = "bar"
    PIE = "pie"
    HISTOGRAM = "histogram"


@dataclass(frozen=True)
class Series:
    """One plotted series.

    ``y_err`` holds half-widths of confidence intervals when the values
    are random quantities (slide 142); ``stochastic`` marks series whose
    values came from noisy measurements so the linter can demand error
    bars.  ``style`` identifies the visual style so the linter can check
    a curve keeps its layout across figures (slide 135).  ``unit`` names
    the quantity's unit ("ms", "%", "jobs/s") so the linter can flag
    charts that mix several result variables on one axis (slide 129).
    """

    label: str
    xs: Tuple[Any, ...]
    ys: Tuple[float, ...]
    y_err: Optional[Tuple[float, ...]] = None
    stochastic: bool = False
    style: str = ""
    unit: str = ""

    def __init__(self, label: str, xs: Sequence[Any],
                 ys: Sequence[float],
                 y_err: Optional[Sequence[float]] = None,
                 stochastic: bool = False, style: str = "",
                 unit: str = ""):
        if not label:
            raise ChartError("series needs a label")
        xs = tuple(xs)
        ys = tuple(float(y) for y in ys)
        if len(xs) != len(ys):
            raise ChartError(
                f"series {label!r}: {len(xs)} x values vs {len(ys)} y values")
        if not xs:
            raise ChartError(f"series {label!r} is empty")
        if y_err is not None:
            y_err = tuple(float(e) for e in y_err)
            if len(y_err) != len(ys):
                raise ChartError(
                    f"series {label!r}: error bars must match the values")
            if any(e < 0 for e in y_err):
                raise ChartError(
                    f"series {label!r}: error half-widths must be >= 0")
        object.__setattr__(self, "label", label)
        object.__setattr__(self, "xs", xs)
        object.__setattr__(self, "ys", ys)
        object.__setattr__(self, "y_err", y_err)
        object.__setattr__(self, "stochastic", stochastic)
        object.__setattr__(self, "style", style)
        object.__setattr__(self, "unit", unit)

    def __len__(self) -> int:
        return len(self.xs)


@dataclass(frozen=True)
class ChartSpec:
    """One figure.

    ``y_starts_at_zero`` declares the y-axis origin (slide 138's
    truncated-axis game is flagged when it is False without
    justification); ``aspect_ratio`` is height/width (the tutorial
    recommends 3/4).
    """

    kind: ChartKind
    title: str
    series: Tuple[Series, ...]
    x_label: str = ""
    y_label: str = ""
    y_starts_at_zero: bool = True
    axis_break_justified: bool = False
    aspect_ratio: float = 0.75

    def __init__(self, kind: ChartKind, title: str,
                 series: Sequence[Series], x_label: str = "",
                 y_label: str = "", y_starts_at_zero: bool = True,
                 axis_break_justified: bool = False,
                 aspect_ratio: float = 0.75):
        if not isinstance(kind, ChartKind):
            raise ChartError(f"bad chart kind {kind!r}")
        series = tuple(series)
        if not series:
            raise ChartError("a chart needs at least one series")
        labels = [s.label for s in series]
        if len(set(labels)) != len(labels):
            raise ChartError(f"duplicate series labels {labels}")
        if aspect_ratio <= 0:
            raise ChartError("aspect ratio must be positive")
        object.__setattr__(self, "kind", kind)
        object.__setattr__(self, "title", title)
        object.__setattr__(self, "series", series)
        object.__setattr__(self, "x_label", x_label)
        object.__setattr__(self, "y_label", y_label)
        object.__setattr__(self, "y_starts_at_zero", y_starts_at_zero)
        object.__setattr__(self, "axis_break_justified",
                           axis_break_justified)
        object.__setattr__(self, "aspect_ratio", aspect_ratio)

    @property
    def n_series(self) -> int:
        return len(self.series)

    def total_points(self) -> int:
        return sum(len(s) for s in self.series)


def line_chart(title: str, series: Sequence[Series], x_label: str,
               y_label: str, **kwargs: Any) -> ChartSpec:
    return ChartSpec(ChartKind.LINE, title, series, x_label=x_label,
                     y_label=y_label, **kwargs)


def bar_chart(title: str, series: Sequence[Series], x_label: str,
              y_label: str, **kwargs: Any) -> ChartSpec:
    return ChartSpec(ChartKind.BAR, title, series, x_label=x_label,
                     y_label=y_label, **kwargs)


def pie_chart(title: str, labels: Sequence[str],
              values: Sequence[float], **kwargs: Any) -> ChartSpec:
    """A pie: one series whose x values are the slice labels."""
    if len(labels) != len(values):
        raise ChartError("labels and values must have equal length")
    if any(v < 0 for v in values):
        raise ChartError("pie slices must be >= 0")
    series = Series(label="slices", xs=tuple(labels),
                    ys=tuple(float(v) for v in values))
    return ChartSpec(ChartKind.PIE, title, (series,), **kwargs)
